//! The error-bound conformance matrix.
//!
//! For every scenario in the registry, this harness sweeps the full
//! combination space the stack promises to be correct on —
//!
//! * **method**: TAC, the 1D baseline, zMesh, the 3D baseline — plus
//!   one adaptive-selection sweep per scenario ([`Method::Auto`], codec
//!   label `auto`), which must honor every contract on whatever
//!   concrete method and per-level codecs it selects;
//! * **codec**: every registered scalar backend (SZ, pco-lite);
//! * **container format**: the in-memory container, the legacy v1
//!   monolith, and the chunked v2/v3 layout (`to_bytes` promotes to v3
//!   automatically when a non-default codec is involved);
//! * **workers**: 1, 2, 4, and 8 threads for both compression and
//!   decompression —
//!
//! and asserts, per cell, the three contracts the paper's pipeline rests
//! on: every finite reconstructed value sits within the **resolved**
//! absolute error bound recorded in the container (non-finite values
//! round-trip bit-exactly), serialized output is **byte-identical for
//! every worker count**, and a region-of-interest decode **agrees
//! bit-for-bit with the full decode** inside the region. The result is
//! a machine-readable [`ConformanceReport`] (`CONFORMANCE.json` in CI).

use crate::scenario::{scenarios, ScenarioSpec};
use tac_amr::{Aabb, AmrDataset, AmrLevel};
use tac_core::{
    compress_dataset_t, decompress_dataset_par_t, decompress_dataset_t, decompress_region_t,
    CodecElement, CodecId, CompressedDataset, Element, Method, MethodBody, Parallelism, TacConfig,
    TacDtype,
};
use tac_obs::meta::RunMeta;

/// Worker counts every cell is swept over.
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Tolerance factor on the bound check (`|err| <= eb * (1 + EPS)`),
/// absorbing the one-ulp slop of computing the error itself in f64.
const BOUND_SLACK: f64 = 1e-9;

/// The serialization leg a cell decodes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContainerFormat {
    /// No serialization: the in-memory container straight to decode.
    Memory,
    /// The legacy monolithic v1 wire format (`to_bytes_v1`).
    V1,
    /// The chunked wire format (`to_bytes`): v2 bytes for all-SZ
    /// containers, v3 when any stream uses another codec.
    Chunked,
}

impl ContainerFormat {
    /// All legs, in sweep order.
    pub fn all() -> [ContainerFormat; 3] {
        [
            ContainerFormat::Memory,
            ContainerFormat::V1,
            ContainerFormat::Chunked,
        ]
    }

    /// Stable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            ContainerFormat::Memory => "memory",
            ContainerFormat::V1 => "v1",
            ContainerFormat::Chunked => "v2/v3",
        }
    }
}

/// Outcome of one scenario x method x codec x format cell.
#[derive(Debug, Clone)]
pub struct ConformanceCell {
    /// Scenario registry key.
    pub scenario: String,
    /// Method label (`TAC`, `1D`, `zMesh`, `3D`).
    pub method: String,
    /// Codec label (`sz`, `pco-lite`).
    pub codec: String,
    /// Container format label (`memory`, `v1`, `v2/v3`).
    pub format: String,
    /// Serialized container bytes (chunked leg; 0 for the memory leg).
    pub container_bytes: usize,
    /// Whether both serializations were byte-identical across all
    /// [`WORKER_COUNTS`].
    pub workers_identical: bool,
    /// Whether parallel decompression matched serial at every count.
    pub decode_par_identical: bool,
    /// Max over present finite cells of `|orig - recon| / resolved_eb`
    /// (0.0 when the scenario has no finite cells to check).
    pub max_err_ratio: f64,
    /// Whether every non-finite input reconstructed bit-exactly.
    pub nonfinite_exact: bool,
    /// ROI-vs-full agreement (chunked leg only; `None` elsewhere).
    pub roi_agrees: Option<bool>,
    /// First failure description, if any step errored outright.
    pub error: Option<String>,
    /// Wall time the cell cost (its format-specific work plus a third of
    /// the compress/decode phase the three format legs share).
    pub wall_ms: f64,
}

impl ConformanceCell {
    /// Whether every contract held for this cell.
    pub fn pass(&self) -> bool {
        self.error.is_none()
            && self.workers_identical
            && self.decode_par_identical
            && self.nonfinite_exact
            && self.max_err_ratio <= 1.0 + BOUND_SLACK
            && self.roi_agrees.unwrap_or(true)
    }
}

/// The full matrix result.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Seed every scenario was generated with.
    pub seed: u64,
    /// Run metadata (commit, seed, workers, cores, timestamp) embedded
    /// as the `meta` header of `CONFORMANCE.json`.
    pub meta: RunMeta,
    /// Cells in sweep order.
    pub cells: Vec<ConformanceCell>,
}

impl ConformanceReport {
    /// Whether every cell passed.
    pub fn all_pass(&self) -> bool {
        self.cells.iter().all(|c| c.pass())
    }

    /// The failing cells.
    pub fn failures(&self) -> Vec<&ConformanceCell> {
        self.cells.iter().filter(|c| !c.pass()).collect()
    }

    /// The `n` most expensive cells by wall time, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<&ConformanceCell> {
        let mut by_time: Vec<&ConformanceCell> = self.cells.iter().collect();
        by_time.sort_by(|a, b| {
            b.wall_ms
                .partial_cmp(&a.wall_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        by_time.truncate(n);
        by_time
    }

    /// Serializes the report as JSON (hand-rolled: the workspace has no
    /// JSON dependency by design).
    pub fn to_json(&self) -> String {
        let mut rows = Vec::with_capacity(self.cells.len());
        for c in &self.cells {
            let roi = match c.roi_agrees {
                None => "null".to_string(),
                Some(v) => v.to_string(),
            };
            let error = match &c.error {
                None => "null".to_string(),
                Some(e) => format!("{:?}", e), // Debug-escape the string
            };
            // JSON has no Infinity/NaN literal: a cell that never
            // measured a ratio (it errored first) serializes as null.
            let ratio = if c.max_err_ratio.is_finite() {
                format!("{:.6}", c.max_err_ratio)
            } else {
                "null".to_string()
            };
            rows.push(format!(
                "    {{\"scenario\": \"{}\", \"method\": \"{}\", \"codec\": \"{}\", \
                 \"format\": \"{}\", \"container_bytes\": {}, \"workers_identical\": {}, \
                 \"decode_par_identical\": {}, \"max_err_ratio\": {}, \
                 \"nonfinite_exact\": {}, \"roi_agrees\": {}, \"pass\": {}, \"error\": {}, \
                 \"wall_ms\": {:.3}}}",
                c.scenario,
                c.method,
                c.codec,
                c.format,
                c.container_bytes,
                c.workers_identical,
                c.decode_par_identical,
                ratio,
                c.nonfinite_exact,
                roi,
                c.pass(),
                error,
                c.wall_ms,
            ));
        }
        let slowest: Vec<String> = self
            .slowest(10)
            .into_iter()
            .map(|c| {
                format!(
                    "    {{\"cell\": \"{}/{}/{}/{}\", \"wall_ms\": {:.3}}}",
                    c.scenario, c.method, c.codec, c.format, c.wall_ms
                )
            })
            .collect();
        format!(
            "{{\n  \"meta\": {},\n  \"seed\": {},\n  \"workers\": {:?},\n  \"total\": {},\n  \
             \"passed\": {},\n  \"failed\": {},\n  \"slowest\": [\n{}\n  ],\n  \
             \"cells\": [\n{}\n  ]\n}}\n",
            self.meta.to_json(),
            self.seed,
            WORKER_COUNTS,
            self.cells.len(),
            self.cells.iter().filter(|c| c.pass()).count(),
            self.failures().len(),
            slowest.join(",\n"),
            rows.join(",\n")
        )
    }

    /// Human-readable summary (one line per failing cell, or a pass
    /// banner).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "conformance: {}/{} cells pass (seed {}, workers {:?})\n",
            self.cells.len() - self.failures().len(),
            self.cells.len(),
            self.seed,
            WORKER_COUNTS,
        );
        for c in self.failures() {
            out.push_str(&format!(
                "  FAIL {}/{}/{}/{}: workers_identical={} decode_par={} err_ratio={:.3} \
                 nonfinite_exact={} roi={:?} error={:?}\n",
                c.scenario,
                c.method,
                c.codec,
                c.format,
                c.workers_identical,
                c.decode_par_identical,
                c.max_err_ratio,
                c.nonfinite_exact,
                c.roi_agrees,
                c.error,
            ));
        }
        out.push_str("  slowest cells:\n");
        for c in self.slowest(10) {
            out.push_str(&format!(
                "    {:>10.3} ms  {}/{}/{}/{}\n",
                c.wall_ms, c.scenario, c.method, c.codec, c.format
            ));
        }
        out
    }
}

/// Runs the full matrix over every registered scenario.
pub fn run_conformance(seed: u64) -> ConformanceReport {
    run_scenarios(&scenarios(), seed)
}

/// Runs the matrix over an explicit scenario subset. Every contract is
/// checked at the scenario's declared element type: `F32` scenarios
/// sweep the same method x codec x format x worker space through the
/// monomorphized `f32` kernel stack and the v4 wire.
pub fn run_scenarios(specs: &[ScenarioSpec], seed: u64) -> ConformanceReport {
    let mut cells = Vec::new();
    for spec in specs {
        let ds = spec.build(seed);
        let ds32 = (spec.dtype == TacDtype::F32).then(|| narrow_to_f32(&ds));
        for method in Method::fixed() {
            for codec in CodecId::all() {
                cells.extend(match &ds32 {
                    Some(narrow) => run_cell(spec, narrow, method, Some(codec)),
                    None => run_cell(spec, &ds, method, Some(codec)),
                });
            }
        }
        // One Auto sweep per scenario: the selection pass picks the
        // method and codecs itself, so there is no codec axis — every
        // other contract (bound, worker identity, ROI agreement) is
        // checked identically on whatever the selection produced.
        cells.extend(match &ds32 {
            Some(narrow) => run_cell(spec, narrow, Method::Auto, None),
            None => run_cell(spec, &ds, Method::Auto, None),
        });
    }
    let workers = WORKER_COUNTS.into_iter().max().unwrap_or(1);
    ConformanceReport {
        seed,
        meta: RunMeta::capture(seed, workers),
        cells,
    }
}

/// Narrows an `f64` scenario dataset to `f32` storage. `F32` scenarios
/// generate only exactly-f32-representable values, so nothing is lost.
pub(crate) fn narrow_to_f32(ds: &AmrDataset) -> AmrDataset<f32> {
    let levels = ds
        .levels()
        .iter()
        .map(|l| {
            let dim = l.dim();
            let mut out = AmrLevel::<f32>::empty(dim);
            for z in 0..dim {
                for y in 0..dim {
                    for x in 0..dim {
                        if l.present(x, y, z) {
                            out.set_value(x, y, z, l.value(x, y, z) as f32);
                        }
                    }
                }
            }
            out
        })
        .collect();
    AmrDataset::new(ds.name(), levels)
}

/// Per-level resolved absolute bounds recorded in a container
/// (monolithic methods store one bound for the whole stream).
fn resolved_level_bounds(cd: &CompressedDataset) -> Vec<f64> {
    match &cd.body {
        MethodBody::Tac(levels) => levels.iter().map(|l| l.abs_eb).collect(),
        MethodBody::Baseline1D(levels) => levels
            .iter()
            .map(|l| l.as_ref().map_or(0.0, |(eb, _, _)| *eb))
            .collect(),
        MethodBody::ZMesh { abs_eb, .. } | MethodBody::Baseline3D { abs_eb, .. } => {
            vec![*abs_eb; cd.num_levels()]
        }
    }
}

/// Checks the bound contract of one reconstruction; returns
/// `(max_err_ratio, nonfinite_exact)` or an error description.
fn check_bounds<T: Element>(
    orig: &AmrDataset<T>,
    recon: &AmrDataset<T>,
    bounds: &[f64],
) -> Result<(f64, bool), String> {
    if orig.num_levels() != recon.num_levels() {
        return Err(format!(
            "reconstruction has {} levels, expected {}",
            recon.num_levels(),
            orig.num_levels()
        ));
    }
    let mut max_ratio = 0.0f64;
    let mut nonfinite_exact = true;
    for (l, (a, b)) in orig.levels().iter().zip(recon.levels()).enumerate() {
        if a.dim() != b.dim() {
            return Err(format!("level {l}: dim {} vs {}", b.dim(), a.dim()));
        }
        let eb = bounds[l];
        for i in a.mask().iter_ones() {
            let (x, y) = (a.data()[i], b.data()[i]);
            if !x.is_finite() {
                nonfinite_exact &= x.to_bits_u64() == y.to_bits_u64();
                continue;
            }
            // A finite input reconstructed as NaN/Inf is the worst
            // possible bound violation — and `err > 0.0` below would be
            // false for NaN, silently passing it.
            if !y.is_finite() {
                return Err(format!(
                    "level {l} cell {i}: finite {x} reconstructed as {y}"
                ));
            }
            let err = (x.to_f64() - y.to_f64()).abs();
            if err > 0.0 {
                if eb <= 0.0 {
                    return Err(format!(
                        "level {l} cell {i}: error {err:e} with resolved bound {eb}"
                    ));
                }
                max_ratio = max_ratio.max(err / eb);
            }
        }
        // Absent cells must reconstruct to exactly zero.
        for i in 0..a.num_cells() {
            if !a.mask().get(i) && b.data()[i].to_f64() != 0.0 {
                return Err(format!(
                    "level {l} cell {i}: absent cell holds {}",
                    b.data()[i]
                ));
            }
        }
    }
    Ok((max_ratio, nonfinite_exact))
}

/// Bitwise dataset equality (reconstructions must be identical across
/// worker counts, and ROI cells identical to the full decode).
fn datasets_bit_equal<T: Element>(a: &AmrDataset<T>, b: &AmrDataset<T>) -> bool {
    a.num_levels() == b.num_levels()
        && a.levels().iter().zip(b.levels()).all(|(x, y)| {
            x.dim() == y.dim()
                && x.mask() == y.mask()
                && x.data()
                    .iter()
                    .zip(y.data())
                    .all(|(p, q)| p.to_bits_u64() == q.to_bits_u64())
        })
}

/// Runs one scenario x method x codec combination, producing one cell
/// per container format. `codec: None` is the [`Method::Auto`] sweep:
/// the configured codec stays at the scenario default (selection picks
/// the real ones) and the cell reports codec `auto`.
fn run_cell<T: CodecElement>(
    spec: &ScenarioSpec,
    ds: &AmrDataset<T>,
    method: Method,
    codec: Option<CodecId>,
) -> Vec<ConformanceCell> {
    let codec_label = codec.map_or("auto", CodecId::label);
    let cell = |format: ContainerFormat| ConformanceCell {
        scenario: spec.name.to_string(),
        method: method.label().to_string(),
        codec: codec_label.to_string(),
        format: format.label().to_string(),
        container_bytes: 0,
        workers_identical: false,
        decode_par_identical: false,
        max_err_ratio: f64::INFINITY,
        nonfinite_exact: false,
        roi_agrees: None,
        error: None,
        wall_ms: 0.0,
    };
    let fail = |format: ContainerFormat, msg: String| {
        let mut c = cell(format);
        c.error = Some(msg);
        c
    };
    // The compress/decode phase below is shared by all three format
    // legs; its cost is split evenly across them so cell times still sum
    // to the matrix wall time.
    let t_shared = std::time::Instant::now();
    let fail_all = |msg: String, t0: std::time::Instant| -> Vec<ConformanceCell> {
        let per_cell = t0.elapsed().as_secs_f64() * 1e3 / 3.0;
        ContainerFormat::all()
            .into_iter()
            .map(|f| {
                let mut c = fail(f, msg.clone());
                c.wall_ms = per_cell;
                c
            })
            .collect()
    };
    let cfg_for = |workers: usize| -> TacConfig {
        let base = spec.config();
        TacConfig {
            codec: codec.unwrap_or(base.codec),
            parallelism: Parallelism::Threads(workers),
            ..base
        }
    };

    // Compress at every worker count; the two serializations must be
    // byte-identical across all of them.
    let reference = match compress_dataset_t(ds, &cfg_for(WORKER_COUNTS[0]), method) {
        Ok(cd) => cd,
        Err(e) => return fail_all(format!("compress failed: {e}"), t_shared),
    };
    let ref_chunked = reference.to_bytes();
    let ref_v1 = reference.to_bytes_v1();
    let mut workers_identical = true;
    for &w in &WORKER_COUNTS[1..] {
        match compress_dataset_t(ds, &cfg_for(w), method) {
            Ok(cd) => {
                workers_identical &= cd.to_bytes() == ref_chunked && cd.to_bytes_v1() == ref_v1;
            }
            Err(e) => return fail_all(format!("compress at {w} workers failed: {e}"), t_shared),
        }
    }

    // Serial full decode, then parallel decode identity.
    let full = match decompress_dataset_t::<T>(&reference) {
        Ok(out) => out,
        Err(e) => return fail_all(format!("decompress failed: {e}"), t_shared),
    };
    let mut decode_par_identical = true;
    let mut par_error = None;
    for &w in &WORKER_COUNTS[1..] {
        match decompress_dataset_par_t::<T>(&reference, Parallelism::Threads(w)) {
            Ok(out) => decode_par_identical &= datasets_bit_equal(&full, &out),
            Err(e) => {
                decode_par_identical = false;
                // Keep the first reason in the report — `false` alone
                // would force a local rerun to learn what broke.
                par_error.get_or_insert(format!("parallel decode at {w} workers failed: {e}"));
            }
        }
    }

    let bounds = resolved_level_bounds(&reference);
    let shared_ms = t_shared.elapsed().as_secs_f64() * 1e3 / 3.0;
    let mut cells = Vec::with_capacity(3);
    for format in ContainerFormat::all() {
        let t_format = std::time::Instant::now();
        let mut c = cell(format);
        c.workers_identical = workers_identical;
        c.decode_par_identical = decode_par_identical;
        c.error = par_error.clone();
        let decoded = match format {
            ContainerFormat::Memory => Ok(full.clone()),
            ContainerFormat::V1 => CompressedDataset::from_bytes(&ref_v1)
                .and_then(|cd| decompress_dataset_t::<T>(&cd))
                .map_err(|e| format!("v1 roundtrip failed: {e}")),
            ContainerFormat::Chunked => CompressedDataset::from_bytes(&ref_chunked)
                .and_then(|cd| decompress_dataset_t::<T>(&cd))
                .map_err(|e| format!("chunked roundtrip failed: {e}")),
        };
        c.container_bytes = match format {
            ContainerFormat::Memory => 0,
            ContainerFormat::V1 => ref_v1.len(),
            ContainerFormat::Chunked => ref_chunked.len(),
        };
        match decoded {
            Err(e) => c.error = Some(e),
            Ok(recon) => match check_bounds(ds, &recon, &bounds) {
                Err(e) => c.error = Some(e),
                Ok((ratio, nonfinite_exact)) => {
                    c.max_err_ratio = ratio;
                    c.nonfinite_exact = nonfinite_exact;
                }
            },
        }
        if format == ContainerFormat::Chunked && c.error.is_none() {
            c.roi_agrees = Some(roi_agrees(&ref_chunked, &full, spec.finest_dim));
        }
        c.wall_ms = shared_ms + t_format.elapsed().as_secs_f64() * 1e3;
        cells.push(c);
    }
    cells
}

/// Decodes two regions of interest (a corner octant and an interior
/// box) and checks each agrees bit-for-bit with the full decode inside
/// the region.
fn roi_agrees<T: CodecElement>(bytes: &[u8], full: &AmrDataset<T>, finest_dim: usize) -> bool {
    let half = (finest_dim / 2).max(1);
    let quarter = finest_dim / 4;
    let rois = [
        Aabb::new((0, 0, 0), (half, half, half)),
        Aabb::new(
            (quarter, quarter, quarter),
            (quarter + half, quarter + half, quarter + half),
        ),
    ];
    for roi in rois {
        let Ok((partial, _stats)) = decompress_region_t::<T>(bytes, roi) else {
            return false;
        };
        if partial.num_levels() != full.num_levels() {
            return false;
        }
        for (l, (p, f)) in partial.levels().iter().zip(full.levels()).enumerate() {
            let roi_level = roi.coarsen(1 << l);
            for z in roi_level.min.2..roi_level.max.2.min(p.dim()) {
                for y in roi_level.min.1..roi_level.max.1.min(p.dim()) {
                    for x in roi_level.min.0..roi_level.max.0.min(p.dim()) {
                        if p.value(x, y, z).to_bits_u64() != f.value(x, y, z).to_bits_u64() {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::scenario;
    use tac_core::{compress_dataset, decompress_dataset};

    #[test]
    fn single_scenario_matrix_passes_and_reports() {
        let spec = scenario("tiny-extremes").unwrap();
        let report = run_scenarios(&[spec], 3);
        // 4 fixed methods x 3 codecs x 3 formats, plus the Auto sweep's
        // 3 format legs.
        assert_eq!(report.cells.len(), 39);
        assert!(report.all_pass(), "{}", report.summary());
        let json = report.to_json();
        assert!(json.contains("\"failed\": 0"), "{json}");
        assert!(json.contains("tiny-extremes"));
        assert!(json.contains("\"codec\": \"auto\""), "{json}");
        assert!(report.summary().contains("39/39"));
    }

    #[test]
    fn adversarial_scenario_holds_bounds_under_every_codec() {
        let spec = scenario("checkerboard").unwrap();
        let report = run_scenarios(&[spec], 11);
        assert!(report.all_pass(), "{}", report.summary());
        // Every checked cell actually measured an error ratio (the
        // scenario has finite data everywhere).
        for c in &report.cells {
            assert!(c.max_err_ratio.is_finite(), "{c:?}");
        }
    }

    #[test]
    fn f32_scenario_matrix_passes_through_the_v4_wire() {
        let spec = scenario("checkerboard-f32").unwrap();
        assert_eq!(spec.dtype, TacDtype::F32);
        let report = run_scenarios(&[spec], 5);
        // Same sweep breadth as an f64 scenario: 4 fixed methods x 3
        // codecs x 3 formats plus the Auto sweep, every leg through the
        // monomorphized f32 stack.
        assert_eq!(report.cells.len(), 39);
        assert!(report.all_pass(), "{}", report.summary());
    }

    #[test]
    fn f32_precision_edges_hold_their_contracts() {
        for name in ["denormal-negzero-f32", "tiny-extremes-f32"] {
            let spec = scenario(name).unwrap();
            let report = run_scenarios(&[spec], 7);
            assert!(report.all_pass(), "{name}: {}", report.summary());
        }
    }

    #[test]
    fn a_violated_bound_is_detected() {
        // Sanity-check the checker itself: decode, then perturb one cell
        // past the recorded bound — the cell must fail.
        let spec = scenario("dense-uniform").unwrap();
        let ds = spec.build(1);
        let cfg = spec.config();
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let recon = decompress_dataset(&cd).unwrap();
        let bounds = resolved_level_bounds(&cd);
        let (ratio, _) = check_bounds(&ds, &recon, &bounds).unwrap();
        assert!(ratio <= 1.0 + 1e-9);
        let mut levels = recon.levels().to_vec();
        let i = levels[0].mask().iter_ones().next().unwrap();
        levels[0].data_mut()[i] += bounds[0] * 5.0;
        let broken = tac_amr::AmrDataset::new("broken", levels);
        let (bad_ratio, _) = check_bounds(&ds, &broken, &bounds).unwrap();
        assert!(bad_ratio > 1.0, "perturbation not detected: {bad_ratio}");

        // A finite input reconstructed as NaN must be flagged too —
        // `|x - NaN| > 0.0` is false, so a ratio check alone would
        // silently pass the worst violation possible.
        let mut nan_levels = decompress_dataset(&cd).unwrap().levels().to_vec();
        let j = nan_levels[0].mask().iter_ones().next().unwrap();
        nan_levels[0].data_mut()[j] = f64::NAN;
        let poisoned = tac_amr::AmrDataset::new("poisoned", nan_levels);
        let err = check_bounds(&ds, &poisoned, &bounds).unwrap_err();
        assert!(err.contains("reconstructed as NaN"), "{err}");
    }

    #[test]
    fn json_stays_valid_when_a_cell_errors_before_measuring() {
        // An errored cell keeps its INFINITY ratio initializer; the JSON
        // must serialize it as null, never as the bare token `inf`.
        let report = ConformanceReport {
            seed: 1,
            meta: RunMeta::capture(1, 8),
            cells: vec![ConformanceCell {
                scenario: "synthetic".into(),
                method: "TAC".into(),
                codec: "sz".into(),
                format: "v1".into(),
                container_bytes: 0,
                workers_identical: false,
                decode_par_identical: false,
                max_err_ratio: f64::INFINITY,
                nonfinite_exact: false,
                roi_agrees: None,
                error: Some("compress failed: synthetic".into()),
                wall_ms: 0.0,
            }],
        };
        let json = report.to_json();
        assert!(json.contains("\"max_err_ratio\": null"), "{json}");
        assert!(!json.contains("inf"), "{json}");
        assert!(json.contains("\"failed\": 1"), "{json}");
    }

    #[test]
    fn report_carries_timing_and_metadata() {
        let spec = scenario("tiny-extremes").unwrap();
        let report = run_scenarios(&[spec], 3);
        // Every cell measured a positive wall time, and the slowest list
        // is sorted descending.
        assert!(report.cells.iter().all(|c| c.wall_ms > 0.0));
        let slowest = report.slowest(10);
        assert_eq!(slowest.len(), 10);
        assert!(slowest.windows(2).all(|w| w[0].wall_ms >= w[1].wall_ms));
        let json = report.to_json();
        assert!(json.contains("\"meta\": {\"git_commit\""), "{json}");
        assert!(json.contains("\"slowest\": ["), "{json}");
        assert!(json.contains("\"wall_ms\""), "{json}");
        assert!(report.summary().contains("slowest cells:"));
    }
}
