//! The adversarial scenario registry.
//!
//! The paper evaluates TAC on seven Nyx snapshots whose fields are all
//! smooth, positive, and comfortably mid-range. Compressors break
//! elsewhere: at discontinuities, at the extremes of the f64 lattice,
//! and on refinement geometries no cosmology run produces. Each
//! [`ScenarioSpec`] here deterministically generates one such adversary
//! from a `u64` seed — a complete, *valid* (exactly-one-cover) AMR
//! dataset plus the error-bound/unit configuration it should be
//! compressed with — so the conformance matrix and the fuzzer can sweep
//! the same structures forever and bisect any failure to a seed.
//!
//! Adding a scenario: write a `fn(seed: u64) -> AmrDataset` (route all
//! randomness through [`TestRng`](crate::TestRng); build irregular
//! geometries with [`dataset_from_assignment`]), append a `ScenarioSpec`
//! to [`scenarios`], and the conformance matrix, the fuzz corpus, and
//! the `conformance` runner binary pick it up automatically.

use crate::rng::TestRng;
use tac_amr::{AmrDataset, AmrLevel};
use tac_core::{TacConfig, TacDtype};
use tac_sz::ErrorBound;

/// One registered adversarial scenario: a named, seeded dataset
/// generator plus the compression configuration it is meant to stress.
#[derive(Clone)]
pub struct ScenarioSpec {
    /// Stable registry key (kebab-case).
    pub name: &'static str,
    /// What the scenario stresses and why it is adversarial.
    pub description: &'static str,
    /// Side of the finest grid every build produces.
    pub finest_dim: usize,
    /// Number of AMR levels every build produces.
    pub num_levels: usize,
    /// Error bound the conformance matrix compresses this scenario with.
    pub error_bound: ErrorBound,
    /// Unit-block size for the TAC pre-process.
    pub unit: usize,
    /// Element type the conformance matrix stores this scenario at. The
    /// generator always produces `f64` values; `F32` scenarios generate
    /// only exactly-f32-representable values, so the matrix narrows them
    /// losslessly before compressing.
    pub dtype: TacDtype,
    build: fn(u64) -> AmrDataset,
}

impl std::fmt::Debug for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSpec")
            .field("name", &self.name)
            .field("finest_dim", &self.finest_dim)
            .field("num_levels", &self.num_levels)
            .field("error_bound", &self.error_bound)
            .finish()
    }
}

impl ScenarioSpec {
    /// Generates the scenario dataset for `seed`. The result is always a
    /// valid tree-based AMR dataset (the generator asserts it).
    pub fn build(&self, seed: u64) -> AmrDataset {
        let ds = (self.build)(seed);
        debug_assert_eq!(ds.finest_dim(), self.finest_dim, "{}", self.name);
        debug_assert_eq!(ds.num_levels(), self.num_levels, "{}", self.name);
        ds
    }

    /// The `TacConfig` the conformance matrix pairs with this scenario
    /// (error bound + unit; codec and parallelism are the sweep's axes).
    pub fn config(&self) -> TacConfig {
        TacConfig {
            unit: self.unit,
            error_bound: self.error_bound,
            // Chunks stay spatially bounded so the ROI-agreement leg of
            // the matrix has real selectivity to exercise.
            roi_tile: (self.finest_dim >= 8).then_some(self.finest_dim / 2),
            ..Default::default()
        }
    }
}

/// Every registered scenario: the nyx-like baseline workload plus the
/// adversarial structures described on each entry.
pub fn scenarios() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: "nyx-grf",
            description: "the repo's historical workload: Run1_Z10 baryon density at \
                          benchmark scale (smooth lognormal field, blobby refinement)",
            finest_dim: 32,
            num_levels: 2,
            error_bound: ErrorBound::Rel(1e-3),
            unit: 4,
            dtype: TacDtype::F64,
            build: build_nyx_grf,
        },
        ScenarioSpec {
            name: "shock-front",
            description: "planar discontinuity: values jump ~2e4 across one cell, the \
                          worst case for Lorenzo/delta prediction; refinement tracks \
                          the front",
            finest_dim: 16,
            num_levels: 2,
            error_bound: ErrorBound::Rel(1e-3),
            unit: 4,
            dtype: TacDtype::F64,
            build: build_shock_front,
        },
        ScenarioSpec {
            name: "spike-field",
            description: "near-constant field with rare isolated 1e6 spikes: exercises \
                          outlier paths (SZ unpredictables, pco-lite page outliers)",
            finest_dim: 16,
            num_levels: 2,
            error_bound: ErrorBound::Abs(1e-3),
            unit: 4,
            dtype: TacDtype::F64,
            build: build_spike_field,
        },
        ScenarioSpec {
            name: "dynamic-range",
            description: "magnitudes spanning 1e-30..1e30 with mixed signs: quantizer \
                          lattice degeneracy and precision loss at extreme v/eb ratios",
            finest_dim: 16,
            num_levels: 2,
            error_bound: ErrorBound::Rel(1e-4),
            unit: 4,
            dtype: TacDtype::F64,
            build: build_dynamic_range,
        },
        ScenarioSpec {
            name: "denormal-negzero",
            description: "denormals, f64::MIN_POSITIVE neighbourhoods, and -0.0 under a \
                          denormal error bound: everything must fall back to verbatim \
                          storage without violating the bound",
            finest_dim: 8,
            num_levels: 1,
            error_bound: ErrorBound::Abs(1e-320),
            unit: 4,
            dtype: TacDtype::F64,
            build: build_denormal_negzero,
        },
        ScenarioSpec {
            name: "deep-column",
            description: "five-level hierarchy refined along a single column down to a \
                          1^3 coarsest grid (empty): maximal nesting depth, extreme \
                          per-level sparsity",
            finest_dim: 16,
            num_levels: 5,
            error_bound: ErrorBound::Rel(1e-3),
            unit: 4,
            dtype: TacDtype::F64,
            build: build_deep_column,
        },
        ScenarioSpec {
            name: "checkerboard",
            description: "2-cell checkerboard masks on both levels (~50% density — the \
                          AKDTree regime) with sign-alternating values: worst-case \
                          spatial prediction and maximal mask entropy",
            finest_dim: 16,
            num_levels: 2,
            error_bound: ErrorBound::Abs(0.5),
            unit: 4,
            dtype: TacDtype::F64,
            build: build_checkerboard,
        },
        ScenarioSpec {
            name: "degenerate-corner",
            description: "one tiny refined corner, a handful of isolated coarse blocks, \
                          and an all-empty 1^3 coarsest level: minimal payloads on \
                          every strategy path",
            finest_dim: 8,
            num_levels: 4,
            error_bound: ErrorBound::Rel(1e-3),
            unit: 2,
            dtype: TacDtype::F64,
            build: build_degenerate_corner,
        },
        ScenarioSpec {
            name: "tiny-extremes",
            description: "2^3 finest grid entirely empty, 1^3 coarsest grid fully \
                          masked: the smallest legal dataset (single-value streams, \
                          degenerate shapes everywhere)",
            finest_dim: 2,
            num_levels: 2,
            error_bound: ErrorBound::Abs(1e-6),
            unit: 2,
            dtype: TacDtype::F64,
            build: build_tiny_extremes,
        },
        ScenarioSpec {
            name: "dense-uniform",
            description: "a single fully-masked level (density 1.0): the GSP/ZeroFill \
                          and 3D-switch regime, no sparsity to exploit",
            finest_dim: 16,
            num_levels: 1,
            error_bound: ErrorBound::Rel(1e-3),
            unit: 4,
            dtype: TacDtype::F64,
            build: build_dense_uniform,
        },
        ScenarioSpec {
            name: "denormal-negzero-f32",
            description: "the f32 precision edge: f32 denormals, f32::MIN_POSITIVE \
                          neighbourhoods, and -0.0 under a sub-normal f32 bound — the \
                          verbatim-fallback contract at single precision",
            finest_dim: 8,
            num_levels: 1,
            error_bound: ErrorBound::Abs(1e-44),
            unit: 4,
            dtype: TacDtype::F32,
            build: build_denormal_negzero_f32,
        },
        ScenarioSpec {
            name: "tiny-extremes-f32",
            description: "the smallest legal dataset stored at f32: single-value \
                          streams and degenerate shapes through the narrow wire",
            finest_dim: 2,
            num_levels: 2,
            error_bound: ErrorBound::Abs(1e-6),
            unit: 2,
            dtype: TacDtype::F32,
            build: build_tiny_extremes_f32,
        },
        ScenarioSpec {
            name: "checkerboard-f32",
            description: "the checkerboard adversary at f32: worst-case spatial \
                          prediction where every quantizer reconstruction must also \
                          survive the narrowing round-trip",
            finest_dim: 16,
            num_levels: 2,
            error_bound: ErrorBound::Abs(0.5),
            unit: 4,
            dtype: TacDtype::F32,
            build: build_checkerboard_f32,
        },
    ]
}

/// Looks up a scenario by its registry key.
pub fn scenario(name: &str) -> Option<ScenarioSpec> {
    scenarios().into_iter().find(|s| s.name == name)
}

/// Builds a valid AMR dataset from an explicit per-position level
/// assignment: `level_of(x, y, z)` maps each **finest-grid** position to
/// the level that stores it (0 = finest), and `value_of(level, x, y, z)`
/// supplies the stored value at that level's own coordinates.
///
/// The assignment must be consistent — every level-`l` cell must have
/// all of its `2^l`-cubed finest positions assigned to the same level —
/// which is exactly the exactly-one-cover invariant; the builder
/// validates the result and panics with the violation otherwise. This
/// is the workhorse for scenarios whose geometry no refinement-score
/// heuristic would produce (checkerboards, columns, degenerate corners).
pub fn dataset_from_assignment(
    name: &str,
    finest_dim: usize,
    num_levels: usize,
    level_of: impl Fn(usize, usize, usize) -> usize,
    value_of: impl Fn(usize, usize, usize, usize) -> f64,
) -> AmrDataset {
    assert!(num_levels >= 1);
    assert!(
        finest_dim % (1 << (num_levels - 1)) == 0,
        "finest dim {finest_dim} not divisible by 2^{}",
        num_levels - 1
    );
    let mut levels: Vec<AmrLevel> = (0..num_levels)
        .map(|l| AmrLevel::empty(finest_dim >> l))
        .collect();
    for z in 0..finest_dim {
        for y in 0..finest_dim {
            for x in 0..finest_dim {
                let l = level_of(x, y, z);
                assert!(l < num_levels, "assignment names level {l} of {num_levels}");
                // Write through the cell's level-l ancestor; repeated
                // writes from siblings are idempotent because the value
                // depends only on the ancestor coordinates.
                let (cx, cy, cz) = (x >> l, y >> l, z >> l);
                levels[l].set_value(cx, cy, cz, value_of(l, cx, cy, cz));
            }
        }
    }
    let ds = AmrDataset::new(name, levels);
    if let Err(e) = ds.validate() {
        panic!("scenario '{name}' produced an invalid assignment: {e}");
    }
    ds
}

/// Pure position-hashed noise in `[lo, hi)`: the same `(seed, l, x, y,
/// z)` always yields the same draw, so `value_of` callbacks built on it
/// are idempotent under [`dataset_from_assignment`]'s repeated writes.
fn hash_noise(seed: u64, l: usize, x: usize, y: usize, z: usize, lo: f64, hi: f64) -> f64 {
    let key = (l as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((x as u64) << 40 | (y as u64) << 20 | z as u64);
    TestRng::new(seed ^ key).range_f64(lo, hi)
}

fn build_nyx_grf(seed: u64) -> AmrDataset {
    tac_nyx::entry("Run1_Z10").expect("catalog entry").generate(
        tac_nyx::FieldKind::BaryonDensity,
        16,
        seed,
    )
}

fn build_shock_front(seed: u64) -> AmrDataset {
    let n = 16usize;
    let mut rng = TestRng::new(seed);
    // The front sits between two 2-cell slabs so refinement blocks stay
    // aligned; seeded jitter rides on both sides.
    let plane = 2 * (2 + rng.below(4)); // 4, 6, 8, or 10
    let amp = 1.0e4;
    dataset_from_assignment(
        "shock-front",
        n,
        2,
        move |x, _y, _z| {
            // Refine the 4-cell band around the front.
            let d = (x as i64 / 2 - plane as i64 / 2).unsigned_abs() as usize;
            usize::from(d >= 2)
        },
        move |l, x, y, z| {
            // Evaluate at the cell's finest-coordinate corner.
            let scale = 1usize << l;
            let fx = (x * scale) as f64;
            let side = if (x * scale) < plane { -amp } else { amp };
            side + (fx * 0.7).sin() * 10.0
                + (y as f64 * 0.3).cos() * 5.0
                + z as f64 * 0.1
                + hash_noise(seed, l, x, y, z, -0.5, 0.5)
        },
    )
}

fn build_spike_field(seed: u64) -> AmrDataset {
    let n = 16usize;
    let mut rng = TestRng::new(seed);
    // ~1.5% of finest positions carry a 1e6 spike; everything else sits
    // within the bound of a constant.
    let total = n * n * n;
    let mut spikes = vec![false; total];
    for s in spikes.iter_mut() {
        *s = rng.chance(0.015);
    }
    dataset_from_assignment(
        "spike-field",
        n,
        2,
        // +x half refined, -x half coarse (block-aligned by x/2 parity).
        |x, _y, _z| usize::from(x < n / 2),
        move |l, x, y, z| {
            let scale = 1usize << l;
            let idx = (x * scale) + n * ((y * scale) + n * (z * scale));
            if l == 0 && spikes[idx] {
                1.0e6
            } else {
                1.0 + (idx % 7) as f64 * 1e-5
            }
        },
    )
}

fn build_dynamic_range(seed: u64) -> AmrDataset {
    let n = 16usize;
    let mut rng = TestRng::new(seed);
    let total = n * n * n;
    // Deterministic magnitude ladder over the full range, seeded signs.
    let values: Vec<f64> = (0..total)
        .map(|i| {
            let exp = -30.0 + 60.0 * (i as f64 / (total - 1) as f64);
            let sign = if rng.chance(0.5) { 1.0 } else { -1.0 };
            sign * 10f64.powf(exp)
        })
        .collect();
    dataset_from_assignment(
        "dynamic-range",
        n,
        2,
        // Alternate 4-cell slabs in z between the levels.
        |_x, _y, z| (z / 4) % 2,
        move |l, x, y, z| {
            let scale = 1usize << l;
            values[(x * scale) + n * ((y * scale) + n * (z * scale))]
        },
    )
}

fn build_denormal_negzero(seed: u64) -> AmrDataset {
    let n = 8usize;
    let mut rng = TestRng::new(seed);
    let specials = [
        0.0,
        -0.0,
        f64::MIN_POSITIVE, // smallest normal
        -f64::MIN_POSITIVE,
        5e-324, // smallest denormal
        -5e-324,
        1e-310, // mid-denormal
        -1e-310,
        f64::MIN_POSITIVE * 1.5,
        1e-300,
    ];
    let data: Vec<f64> = (0..n * n * n)
        .map(|_| specials[rng.below(specials.len())])
        .collect();
    AmrDataset::new("denormal-negzero", vec![AmrLevel::dense(n, data)])
}

fn build_deep_column(seed: u64) -> AmrDataset {
    let n = 16usize;
    dataset_from_assignment(
        "deep-column",
        n,
        5,
        |x, y, _z| {
            // The column (x, y) = (0, 0) is refined all the way down;
            // everything else lives at the level where its ancestor
            // first leaves the column. The 1^3 coarsest level ends up
            // empty (its single cell is refined).
            let m = x.max(y);
            if m == 0 {
                0
            } else {
                (usize::BITS - m.leading_zeros()) as usize - 1
            }
        },
        move |l, x, y, z| {
            let scale = (1usize << l) as f64;
            1.0e3 * ((x as f64 * scale * 0.4).sin() + (y as f64 * scale * 0.3).cos())
                + z as f64 * scale
                + hash_noise(seed, l, x, y, z, -0.25, 0.25)
        },
    )
}

fn build_checkerboard(seed: u64) -> AmrDataset {
    let n = 16usize;
    dataset_from_assignment(
        "checkerboard",
        n,
        2,
        // Checkerboard over 2-cell blocks: even parity fine, odd coarse.
        |x, y, z| (x / 2 + y / 2 + z / 2) % 2,
        move |l, x, y, z| {
            // Sign alternates per cell at each level: anti-smooth.
            let sign = if (x + y + z) % 2 == 0 { 1.0 } else { -1.0 };
            sign * (100.0 + l as f64 * 17.0) + hash_noise(seed, l, x, y, z, -10.0, 10.0)
        },
    )
}

fn build_degenerate_corner(seed: u64) -> AmrDataset {
    let n = 8usize;
    dataset_from_assignment(
        "degenerate-corner",
        n,
        4,
        |x, y, z| {
            let m = x.max(y).max(z);
            if m < 2 {
                0 // the refined 2^3 corner
            } else if m < 4 {
                1 // the rest of the first octant, as 7 isolated fine-ish cells
            } else {
                2 // the other 7 octants at dim 2; the 1^3 level stays empty
            }
        },
        move |l, x, y, z| {
            (l * 100) as f64 + (x + 2 * y + 4 * z) as f64 + hash_noise(seed, l, x, y, z, -0.1, 0.1)
        },
    )
}

/// Snaps every present value of an `f64` dataset to its nearest `f32`
/// (stored back as `f64`), so an `F32` scenario's generator output can
/// be narrowed losslessly by the conformance matrix.
fn snap_to_f32(name: &str, ds: AmrDataset) -> AmrDataset {
    let levels = ds
        .levels()
        .iter()
        .map(|l| {
            let dim = l.dim();
            let mut out = AmrLevel::empty(dim);
            for z in 0..dim {
                for y in 0..dim {
                    for x in 0..dim {
                        if l.present(x, y, z) {
                            out.set_value(x, y, z, l.value(x, y, z) as f32 as f64);
                        }
                    }
                }
            }
            out
        })
        .collect();
    AmrDataset::new(name, levels)
}

fn build_denormal_negzero_f32(seed: u64) -> AmrDataset {
    let n = 8usize;
    let mut rng = TestRng::new(seed);
    let specials: [f64; 10] = [
        0.0,
        -0.0,
        f32::MIN_POSITIVE as f64, // smallest normal
        -(f32::MIN_POSITIVE as f64),
        f32::from_bits(1) as f64, // smallest denormal (~1.4e-45)
        -(f32::from_bits(1) as f64),
        1e-40f32 as f64, // mid-denormal
        -(1e-40f32 as f64),
        (f32::MIN_POSITIVE * 1.5) as f64,
        1e-35f32 as f64,
    ];
    let data: Vec<f64> = (0..n * n * n)
        .map(|_| specials[rng.below(specials.len())])
        .collect();
    AmrDataset::new("denormal-negzero-f32", vec![AmrLevel::dense(n, data)])
}

fn build_tiny_extremes_f32(seed: u64) -> AmrDataset {
    let mut rng = TestRng::new(seed);
    let fine = AmrLevel::empty(2);
    let coarse = AmrLevel::dense(1, vec![rng.range_f64(-5.0, 5.0) as f32 as f64]);
    AmrDataset::new("tiny-extremes-f32", vec![fine, coarse])
}

fn build_checkerboard_f32(seed: u64) -> AmrDataset {
    snap_to_f32("checkerboard-f32", build_checkerboard(seed))
}

fn build_tiny_extremes(seed: u64) -> AmrDataset {
    let mut rng = TestRng::new(seed);
    // Finest 2^3 entirely empty; coarsest 1^3 fully masked with one value.
    let fine = AmrLevel::empty(2);
    let coarse = AmrLevel::dense(1, vec![rng.range_f64(-5.0, 5.0)]);
    AmrDataset::new("tiny-extremes", vec![fine, coarse])
}

fn build_dense_uniform(seed: u64) -> AmrDataset {
    let n = 16usize;
    let mut noise = TestRng::new(seed);
    let data: Vec<f64> = (0..n * n * n)
        .map(|i| {
            let (x, y, z) = (i % n, (i / n) % n, i / (n * n));
            (x as f64 * 0.4).sin() * 3.0
                + (y as f64 * 0.25).cos() * 2.0
                + z as f64 * 0.05
                + noise.range_f64(-0.01, 0.01)
        })
        .collect();
    AmrDataset::new("dense-uniform", vec![AmrLevel::dense(n, data)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_promised_breadth() {
        let all = scenarios();
        // The nyx baseline plus at least six adversarial structures.
        assert!(all.len() >= 7, "only {} scenarios", all.len());
        let mut names: Vec<&str> = all.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len(), "duplicate scenario names");
        assert!(scenario("nyx-grf").is_some());
        assert!(scenario("no-such-thing").is_none());
    }

    #[test]
    fn every_scenario_is_valid_deterministic_and_matches_its_spec() {
        for spec in scenarios() {
            for seed in [0u64, 1, 42] {
                let ds = spec.build(seed);
                ds.validate()
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", spec.name));
                assert_eq!(ds.finest_dim(), spec.finest_dim, "{}", spec.name);
                assert_eq!(ds.num_levels(), spec.num_levels, "{}", spec.name);
                let again = spec.build(seed);
                for (a, b) in ds.levels().iter().zip(again.levels()) {
                    assert_eq!(a, b, "{} seed {seed} not deterministic", spec.name);
                }
            }
            // Different seeds differ somewhere (fixed-geometry scenarios
            // differ in values, not masks).
            let a = spec.build(1);
            let b = spec.build(2);
            let differs = a
                .levels()
                .iter()
                .zip(b.levels())
                .any(|(x, y)| x.data() != y.data());
            assert!(differs, "{} ignores its seed", spec.name);
            assert!(spec.config().validate().is_ok(), "{}", spec.name);
        }
    }

    #[test]
    fn deep_column_reaches_a_1cube_and_has_an_empty_coarsest() {
        let ds = scenario("deep-column").unwrap().build(5);
        assert_eq!(ds.num_levels(), 5);
        assert_eq!(ds.levels()[4].dim(), 1);
        assert_eq!(ds.levels()[4].num_present(), 0, "coarsest must be empty");
        // The finest level holds exactly the 2x2 column (m <= 1 maps to
        // level 0: a finer split would need a sub-finest level).
        assert_eq!(ds.levels()[0].num_present(), 4 * 16);
        // Each intermediate level is the thin shell around the column.
        assert!(ds.densities()[1] < 0.05 && ds.densities()[2] < 0.2);
    }

    #[test]
    fn checkerboard_sits_in_the_akdtree_density_band() {
        let ds = scenario("checkerboard").unwrap().build(9);
        let d = ds.finest_density();
        assert!((d - 0.5).abs() < 1e-12, "density {d}");
    }

    #[test]
    fn denormal_scenario_contains_negative_zero_and_denormals() {
        let ds = scenario("denormal-negzero").unwrap().build(3);
        let data = ds.finest().data();
        assert!(data.iter().any(|v| v.to_bits() == (-0.0f64).to_bits()));
        assert!(data.iter().any(|&v| v != 0.0 && !v.is_normal()));
    }

    #[test]
    fn f32_scenarios_generate_only_f32_exact_values() {
        for name in [
            "denormal-negzero-f32",
            "tiny-extremes-f32",
            "checkerboard-f32",
        ] {
            let spec = scenario(name).unwrap();
            assert_eq!(spec.dtype, TacDtype::F32, "{name}");
            let ds = spec.build(7);
            for (l, level) in ds.levels().iter().enumerate() {
                for &v in level.data() {
                    assert_eq!(
                        (v as f32 as f64).to_bits(),
                        v.to_bits(),
                        "{name} level {l}: {v} is not exactly f32-representable"
                    );
                }
            }
        }
        // The f32 precision-edge scenario really exercises the edge:
        // negative zero and f32 denormals.
        let ds = scenario("denormal-negzero-f32").unwrap().build(3);
        let data = ds.finest().data();
        assert!(data.iter().any(|v| v.to_bits() == (-0.0f64).to_bits()));
        assert!(data.iter().any(|&v| v != 0.0 && !(v as f32).is_normal()));
    }

    #[test]
    fn assignment_builder_rejects_inconsistent_assignments() {
        // A per-cell (not block-aligned) split at level 1 violates the
        // exactly-one-cover invariant and must panic with the violation.
        let result = std::panic::catch_unwind(|| {
            dataset_from_assignment("bad", 4, 2, |x, _, _| x % 2, |_, _, _, _| 1.0)
        });
        assert!(result.is_err());
    }
}
