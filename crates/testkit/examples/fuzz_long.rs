//! Long-running fuzz campaign driver.
//!
//! The CI smoke runs 2k iterations; this example exists for deeper
//! local campaigns against the container parsers:
//!
//! ```text
//! cargo run --release -p tac-testkit --example fuzz_long 200000 3
//! ```
//!
//! Arguments: iteration count (default 100000) and seed (default 1).
//! Exits non-zero and prints the offending bytes when a panic or an
//! incoherent decode is found — paste those bytes into
//! `tests/fuzz_regressions.rs` as a named regression before fixing.

use tac_testkit::{fuzz_containers, FuzzConfig};

fn main() {
    let iterations: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let out = fuzz_containers(&FuzzConfig { iterations, seed });
    println!("{}", out.summary());
    for case in out.panics.iter().chain(out.incoherent.iter()).take(10) {
        println!("CASE iter={} desc={}", case.iteration, case.description);
        println!("BYTES {:?}", case.bytes);
    }
    std::process::exit(i32::from(!out.clean()));
}
