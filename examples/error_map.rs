//! Error-map visualisation (paper Figs. 7 and 12): compresses one AMR
//! level with two strategies and writes per-slice compression-error maps
//! as PGM images, where brighter means more error. Reproduces the visual
//! comparison of NaST vs OpST (sparse) and ZF vs GSP (dense).
//!
//! ```sh
//! cargo run --release -p tac-core --example error_map
//! # writes target/error_maps/*.pgm
//! ```

use std::io::Write;
use tac_core::{compress_level, decompress_level, resolve_level_eb, Strategy, TacConfig};
use tac_nyx::{entry, FieldKind};
use tac_sz::ErrorBound;

fn main() {
    let out_dir = std::path::Path::new("target/error_maps");
    std::fs::create_dir_all(out_dir).expect("create output dir");

    let ds = entry("Run1_Z10")
        .expect("catalog entry")
        .generate(FieldKind::BaryonDensity, 8, 3);
    let cfg = TacConfig::default();

    // Fig. 7: the sparse fine level (23%), NaST vs OpST.
    let fine = &ds.levels()[0];
    let eb_fine = resolve_level_eb(ErrorBound::Rel(4.8e-4), 1.0, fine.value_range()).unwrap();
    for strategy in [Strategy::NaST, Strategy::OpST] {
        render(fine, strategy, eb_fine, &cfg, out_dir);
    }

    // Fig. 12: the dense coarse level (77%), ZF vs GSP.
    let coarse = &ds.levels()[1];
    let eb_coarse = resolve_level_eb(ErrorBound::Rel(6.7e-3), 1.0, coarse.value_range()).unwrap();
    for strategy in [Strategy::ZeroFill, Strategy::Gsp] {
        render(coarse, strategy, eb_coarse, &cfg, out_dir);
    }

    println!("\nwrote error maps to {}", out_dir.display());
}

/// Compresses `level` with `strategy`, prints CR/PSNR, and writes the
/// central z-slice's |error| map as a PGM.
fn render(
    level: &tac_amr::AmrLevel,
    strategy: Strategy,
    abs_eb: f64,
    cfg: &TacConfig,
    out_dir: &std::path::Path,
) {
    let cl = compress_level(level, strategy, abs_eb, cfg).expect("compress level");
    let recon = decompress_level(&cl, level.mask()).expect("decompress level");
    let dim = level.dim();

    // CR counts the present cells; PSNR over present cells.
    let present = level.num_present();
    let cr = (present * 8) as f64 / cl.total_bytes() as f64;
    let mut sum_sq = 0.0;
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for i in level.mask().iter_ones() {
        let e = level.data()[i] - recon.data()[i];
        sum_sq += e * e;
        lo = lo.min(level.data()[i]);
        hi = hi.max(level.data()[i]);
    }
    let mse = sum_sq / present as f64;
    let psnr = 20.0 * (hi - lo).log10() - 10.0 * mse.log10();
    println!(
        "{:<9} dim {:>4}  density {:>5.1}%  CR {:>7.1}  PSNR {:>6.2} dB",
        format!("{strategy:?}"),
        dim,
        level.density() * 100.0,
        cr,
        psnr
    );

    // Central slice |error| map, normalized to the error bound (so the
    // images of two strategies share a scale).
    let z = dim / 2;
    let mut pgm = Vec::with_capacity(dim * dim * 4 + 64);
    writeln!(pgm, "P2\n{dim} {dim}\n255").unwrap();
    for y in 0..dim {
        let mut row = String::with_capacity(dim * 4);
        for x in 0..dim {
            let i = x + dim * (y + dim * z);
            let err = (level.data()[i] - recon.data()[i]).abs();
            let shade = ((err / abs_eb).min(1.0) * 255.0) as u8;
            row.push_str(&format!("{shade} "));
        }
        writeln!(pgm, "{row}").unwrap();
    }
    let path = out_dir.join(format!(
        "{}_z{z}.pgm",
        format!("{strategy:?}").to_lowercase()
    ));
    std::fs::write(&path, pgm).expect("write pgm");
}
