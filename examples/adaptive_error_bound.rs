//! Per-level adaptive error bounds (paper Sec. 4.5): because TAC
//! compresses each AMR level independently, the error bound can differ
//! per level. The paper tunes fine:coarse to 3:1 for power-spectrum
//! quality and 2:1 for halo-finder quality; this example sweeps ratios
//! and shows the trade-off at (almost) constant compression ratio.
//!
//! ```sh
//! cargo run --release -p tac-core --example adaptive_error_bound
//! ```

use tac_amr::to_uniform;
use tac_analysis::{power_spectrum, relative_error};
use tac_core::{compress_dataset, decompress_dataset, Method, TacConfig};
use tac_nyx::{entry, FieldKind};
use tac_sz::ErrorBound;

fn main() {
    let ds = entry("Run1_Z2")
        .expect("catalog entry")
        .generate(FieldKind::BaryonDensity, 8, 77);
    let n = ds.finest_dim();
    let reference = power_spectrum(&to_uniform(&ds), n);

    println!("dataset {}: densities {:?}", ds.name(), ds.densities());
    println!(
        "\n{:<14} {:>9} {:>12} {:>16}",
        "fine:coarse", "CR", "PSNR (dB)", "max P(k) err (%)"
    );

    // Sweep error-bound ratios at a fixed base bound. Ratios > 1 loosen
    // the fine level (gaining ratio) while tightening what the coarse
    // level contributes to the up-sampled analysis grid.
    for (label, scales) in [
        ("1:1 (uniform)", vec![1.0, 1.0]),
        ("2:1", vec![2.0, 1.0]),
        ("3:1 (paper)", vec![3.0, 1.0]),
        ("8:1 (naive)", vec![8.0, 1.0]),
        ("1:2", vec![1.0, 2.0]),
    ] {
        let cfg = TacConfig {
            error_bound: ErrorBound::Rel(2e-5),
            level_eb_scale: scales,
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).expect("compress");
        let out = decompress_dataset(&cd).expect("decompress");
        let d = tac_analysis::amr_distortion(&ds, &out);
        let ps = power_spectrum(&to_uniform(&out), n);
        let max_err = relative_error(&reference, &ps)
            .into_iter()
            .zip(&reference.k)
            .filter(|(_, &k)| k < 10.0)
            .map(|(e, _)| e)
            .fold(0.0f64, f64::max);
        println!(
            "{label:<14} {:>8.1}x {:>12.2} {:>16.3}",
            cd.stats().ratio(),
            d.psnr,
            max_err * 100.0
        );
    }

    println!(
        "\nReading the table: ratios like 3:1 keep the compression ratio\n\
         close to uniform bounds while cutting the analysis error that\n\
         up-sampled coarse cells inject — the paper's Sec. 4.5 effect."
    );
}
