//! Quickstart: generate a small synthetic AMR cosmology snapshot,
//! compress it with TAC, and inspect the results.
//!
//! ```sh
//! cargo run --release -p tac-core --example quickstart
//! ```

use tac_analysis::amr_distortion;
use tac_core::{compress_dataset, decompress_dataset, Method, TacConfig};
use tac_nyx::{entry, FieldKind};
use tac_sz::ErrorBound;

fn main() {
    // 1. Generate a stand-in for the paper's Run1_Z10 snapshot (two AMR
    //    levels, 23% / 77% density) at 1/8 scale: 64^3 fine, 32^3 coarse.
    let dataset =
        entry("Run1_Z10")
            .expect("catalog entry")
            .generate(FieldKind::BaryonDensity, 8, 42);
    dataset.validate().expect("valid tree-based AMR");

    println!("dataset      : {}", dataset.name());
    println!("levels       : {}", dataset.num_levels());
    for (l, level) in dataset.levels().iter().enumerate() {
        println!(
            "  level {l}: {:>4}^3 grid, density {:>6.2}%",
            level.dim(),
            level.density() * 100.0
        );
    }
    println!("present cells: {}", dataset.total_present());

    // 2. Compress with TAC: value-range-relative error bound of 1e-4,
    //    strategies picked per level by the density filter.
    let cfg = TacConfig::with_error_bound(ErrorBound::Rel(1e-4));
    let compressed = compress_dataset(&dataset, &cfg, Method::Tac).expect("compression");

    let stats = compressed.stats();
    println!("\n--- TAC compression ---");
    println!("strategies   : {:?}", compressed.strategies().unwrap());
    println!("payload      : {} bytes", compressed.payload_bytes());
    println!("ratio        : {:.1}x", stats.ratio());
    println!("bit rate     : {:.3} bits/value", stats.bit_rate());

    // 3. Serialize / parse the container (what you would write to disk).
    let bytes = compressed.to_bytes();
    let parsed = tac_core::CompressedDataset::from_bytes(&bytes).expect("parse container");

    // 4. Decompress and measure distortion over the present cells.
    let restored = decompress_dataset(&parsed).expect("decompression");
    let d = amr_distortion(&dataset, &restored);
    println!("\n--- reconstruction quality ---");
    println!("PSNR         : {:.2} dB", d.psnr);
    println!("max |error|  : {:.3e}", d.max_abs_error);
    println!("value range  : {:.3e}", d.value_range);
    assert!(d.max_abs_error <= 1e-4 * d.value_range * (1.0 + 1e-9));
    println!("\nerror bound respected ✓");
}
