//! Full cosmology workflow: compress every field of a synthetic Nyx
//! snapshot, then run both application-specific post-analyses (matter
//! power spectrum and halo finder) on the decompressed data and compare
//! against the originals — the workflow a simulation group would run
//! before committing to in-situ compression settings.
//!
//! ```sh
//! cargo run --release -p tac-core --example cosmology_pipeline
//! ```

use tac_amr::to_uniform;
use tac_analysis::{
    compare_catalogs, find_halos, power_spectrum, relative_error, HaloFinderConfig,
};
use tac_core::{compress_dataset, decompress_dataset, Method, TacConfig};
use tac_nyx::{entry, FieldKind};
use tac_sz::ErrorBound;

fn main() {
    let catalog_entry = entry("Run1_Z2").expect("catalog entry");
    let cfg = TacConfig::with_error_bound(ErrorBound::Rel(1e-5));

    println!("=== snapshot {} (scale 1/8) ===\n", catalog_entry.name);
    println!(
        "{:<22} {:>9} {:>12} {:>10}",
        "field", "CR", "bit-rate", "PSNR (dB)"
    );

    let mut baryon = None;
    for kind in FieldKind::all() {
        let ds = catalog_entry.generate(kind, 8, 1234);
        let cd = compress_dataset(&ds, &cfg, Method::Tac).expect("compress");
        let out = decompress_dataset(&cd).expect("decompress");
        let d = tac_analysis::amr_distortion(&ds, &out);
        let stats = cd.stats();
        println!(
            "{:<22} {:>8.1}x {:>9.3} b/v {:>10.2}",
            kind.name(),
            stats.ratio(),
            stats.bit_rate(),
            d.psnr
        );
        if kind == FieldKind::BaryonDensity {
            baryon = Some((ds, out));
        }
    }

    let (original, decompressed) = baryon.expect("baryon density processed");
    let n = original.finest_dim();

    // --- Post-analysis 1: matter power spectrum -------------------------
    let uni_orig = to_uniform(&original);
    let uni_dec = to_uniform(&decompressed);
    let ps_orig = power_spectrum(&uni_orig, n);
    let ps_dec = power_spectrum(&uni_dec, n);
    let errs = relative_error(&ps_orig, &ps_dec);
    println!("\n--- power spectrum (baryon density) ---");
    println!(
        "{:>6} {:>14} {:>14} {:>10}",
        "k", "P(k) orig", "P(k) dec", "rel err"
    );
    for ((k, (p, q)), e) in ps_orig
        .k
        .iter()
        .zip(ps_orig.power.iter().zip(&ps_dec.power))
        .zip(&errs)
        .take(10)
    {
        println!("{k:>6.2} {p:>14.5e} {q:>14.5e} {e:>9.4}%", e = e * 100.0);
    }
    let max_low_k = errs
        .iter()
        .zip(&ps_orig.k)
        .filter(|(_, &k)| k < 10.0)
        .map(|(e, _)| *e)
        .fold(0.0f64, f64::max);
    println!("max relative error for k < 10: {:.3}%", max_low_k * 100.0);

    // --- Post-analysis 2: halo finder -----------------------------------
    let hf = HaloFinderConfig {
        threshold_factor: 20.0,
        min_cells: 4,
    };
    let cat_orig = find_halos(&uni_orig, n, &hf);
    let cat_dec = find_halos(&uni_dec, n, &hf);
    println!(
        "\n--- halo finder (threshold {:.1}x mean) ---",
        hf.threshold_factor
    );
    println!("halos in original    : {}", cat_orig.halos.len());
    println!("halos in decompressed: {}", cat_dec.halos.len());
    if let Some(big) = cat_orig.biggest() {
        println!(
            "biggest halo         : {} cells, mass {:.4e} at {:?}",
            big.num_cells, big.mass, big.position
        );
        let cmp = compare_catalogs(&cat_orig, &cat_dec);
        println!("rel mass difference  : {:.3e}", cmp.rel_mass_diff);
        println!("cell count difference: {}", cmp.cell_count_diff);
    }
}
