//! Offline shim for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! Implements exactly the [`Buf`] / [`BufMut`] surface `tac-core` uses for
//! its little-endian wire format: cursor-style reads over `&[u8]` and
//! appends onto `Vec<u8>`. Drop-in replaceable by the real crate.

/// Read side of a byte cursor. Implemented for `&[u8]`, which advances
/// through the slice as values are consumed.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);
    /// Copy the next `dst.len()` bytes into `dst` and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write side of a byte sink. Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(1 << 63);
        buf.put_f64_le(-0.5);
        buf.put_slice(b"xyz");

        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 1 << 63);
        assert_eq!(r.get_f64_le(), -0.5);
        assert_eq!(r.remaining(), 3);
        r.advance(1);
        assert_eq!(r, b"yz");
    }
}
