//! Offline shim for [`criterion`](https://docs.rs/criterion).
//!
//! Implements the macro/API surface the `tac-bench` benches use — groups,
//! throughput annotation, `iter`/`iter_batched` — with a small
//! warmup-then-measure loop that reports median wall-clock time per
//! iteration. No statistics engine, no HTML reports; swap the workspace
//! dependency to the registry crate for publication-grade numbers.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Controls how `iter_batched` amortizes setup cost. The shim times every
/// routine invocation individually, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Top-level benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
            sample_size: 30,
        }
    }
}

/// A named set of benchmarks sharing throughput/sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timed samples per benchmark (min 10 in real criterion).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its median time (and throughput if
    /// annotated).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let median = bencher.median();
        let rate = match (self.throughput, median) {
            (Some(Throughput::Bytes(b)), Some(t)) if t > Duration::ZERO => format!(
                "  {:.1} MiB/s",
                b as f64 / t.as_secs_f64() / (1024.0 * 1024.0)
            ),
            (Some(Throughput::Elements(e)), Some(t)) if t > Duration::ZERO => {
                format!("  {:.3} Melem/s", e as f64 / t.as_secs_f64() / 1e6)
            }
            _ => String::new(),
        };
        match median {
            Some(t) => eprintln!("  {}/{id}: {t:?}/iter{rate}", self.name),
            None => eprintln!("  {}/{id}: no samples", self.name),
        }
        self
    }

    /// Ends the group (match for real criterion's API; the shim has no
    /// deferred reporting).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` over `sample_size` iterations (plus one warmup).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 4); // warmup + 3 samples
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 2,
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput);
        assert_eq!(b.samples.len(), 2);
    }
}
