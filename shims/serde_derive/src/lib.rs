//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! Nothing in this workspace serializes through serde at runtime (the wire
//! formats are hand-rolled), so `#[derive(Serialize, Deserialize)]` only
//! needs to parse. If a future PR adds a real serde backend, swap the
//! `serde`/`serde_derive` workspace dependencies to the registry versions.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
