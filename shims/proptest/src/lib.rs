//! Offline shim for [`proptest`](https://docs.rs/proptest).
//!
//! Supports the subset the integration tests use: the `proptest!` macro
//! with an optional `#![proptest_config(...)]` header, range and
//! `any::<T>()` strategies, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` result macros.
//!
//! Differences from real proptest: generation is driven by a fixed-seed
//! deterministic RNG (so CI failures reproduce exactly), and failing cases
//! are reported without shrinking.

use std::fmt;

pub use crate::strategy::{Any, Strategy};

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// An assertion failed; the test panics with this message.
    Fail(String),
}

/// Result type each generated case evaluates to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config requiring `cases` passing cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG handed to strategies (fixed seed per test fn).
pub mod test_runner {
    pub use super::ProptestConfig as Config;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Fixed-seed generator so every run explores the same cases.
    #[derive(Debug)]
    pub struct TestRng(pub StdRng);

    impl TestRng {
        /// Seeds from the test name so sibling tests draw different data.
        pub fn deterministic(salt: &str) -> Self {
            let mut seed = 0xC0FF_EE00_5EED_u64;
            for b in salt.bytes() {
                seed = seed.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
            }
            TestRng(StdRng::seed_from_u64(seed))
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type this strategy produces.
        type Value;
        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.0.gen_range(self.clone())
        }
    }

    impl Strategy for Range<usize> {
        type Value = usize;
        fn new_value(&self, rng: &mut TestRng) -> usize {
            rng.0.gen_range(self.clone())
        }
    }

    impl Strategy for Range<u64> {
        type Value = u64;
        fn new_value(&self, rng: &mut TestRng) -> u64 {
            rng.0.gen_range(self.clone())
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;
        fn new_value(&self, rng: &mut TestRng) -> i32 {
            rng.0.gen_range(self.clone())
        }
    }

    /// Strategy returned by [`super::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.0.gen_range(0usize..2) == 1
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.0.gen_range(0u64..256) as u8
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.0.gen_range(0u64..u64::MAX)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.0.gen_range(-1e12f64..1e12)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The strategy for "any value of `T`".
pub fn any<T: strategy::Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Namespaced strategy constructors (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;
        use std::ops::Range;

        /// Acceptable `size` arguments for [`vec`]: a fixed length or a
        /// half-open range of lengths.
        pub trait IntoSizeRange {
            /// Draws a concrete length.
            fn pick_len(&self, rng: &mut TestRng) -> usize;
        }

        impl IntoSizeRange for usize {
            fn pick_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn pick_len(&self, rng: &mut TestRng) -> usize {
                rng.0.gen_range(self.clone())
            }
        }

        /// Strategy producing `Vec`s of values drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        /// `Vec` strategy over an element strategy and a size spec.
        pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
            VecStrategy { element, len: size }
        }

        impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.pick_len(rng);
                (0..n).map(|_| self.element.new_value(rng)).collect()
            }
        }
    }
}

/// Glob-import surface matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Any, Arbitrary, Strategy};
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

#[doc(hidden)]
pub fn __format_failure(args: fmt::Arguments<'_>) -> TestCaseError {
    TestCaseError::Fail(args.to_string())
}

#[doc(hidden)]
pub fn __run_cases(
    name: &str,
    cases: u32,
    mut case: impl FnMut(&mut test_runner::TestRng) -> TestCaseResult,
) {
    let mut rng = test_runner::TestRng::deterministic(name);
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cases.saturating_mul(20).max(100);
    while passed < cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest shim: `{name}` rejected too many cases ({passed}/{cases} passed \
             after {attempts} attempts)"
        );
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case failed (case {passed}, attempt {attempts}): {msg}")
            }
        }
    }
}

/// Rejects the current case unless `cond` holds (the case is re-drawn).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::__format_failure(format_args!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg).cases; $($rest)*);
    };
    (@cases $cases:expr; ) => {};
    (@cases $cases:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__run_cases(stringify!($name), $cases, |__rng| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __rng);)*
                $body
                Ok(())
            });
        }
        $crate::proptest!(@cases $cases; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cases $crate::ProptestConfig::default().cases; $($rest)*);
    };
}

// Re-export for `tac_amr`-style paths used inside test bodies.
pub use prop::collection;

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_follow_size_spec(
            v in prop::collection::vec(any::<bool>(), 4..12),
            w in prop::collection::vec(0u64..5, 7),
        ) {
            prop_assert!((4..12).contains(&v.len()));
            prop_assert_eq!(w.len(), 7);
            for x in &w {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_assertion_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 1000, "x was {}", x);
            }
        }
        inner();
    }
}
