//! Offline shim for [`serde`](https://docs.rs/serde).
//!
//! Re-exports no-op `Serialize`/`Deserialize` derives and declares the
//! marker traits of the same names. The workspace's own wire formats are
//! hand-rolled, so nothing depends on real serde behaviour; this exists so
//! type definitions annotated for downstream consumers keep compiling in
//! the offline build environment.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
