//! Offline shim for [`rand`](https://docs.rs/rand) 0.8.
//!
//! Provides `StdRng::seed_from_u64` plus `Rng::gen_range` over the range
//! types this workspace samples (`Range<f64>`, `Range<usize>`,
//! `Range<u64>`, `Range<i32>`). The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed, which is exactly what the
//! synthetic-dataset code relies on.

use std::ops::Range;

/// Types that can construct themselves from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling over a range type, mirroring `rand::distributions`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        self.start + rng.next_u64() % span
    }
}

impl SampleRange<i32> for Range<i32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        self.start + (rng.next_u64() % span) as i32
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — deterministic, fast, and good enough for synthetic
    /// field generation (this shim's `StdRng` is not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 50), b.gen_range(0u64..1 << 50));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = rng.gen_range(5usize..17);
            assert!((5..17).contains(&u));
            let i = rng.gen_range(-6i32..-1);
            assert!((-6..-1).contains(&i));
        }
    }

    #[test]
    fn f64_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
