//! The full error-bound conformance matrix as a test: every registered
//! scenario x {TAC, 1D, zMesh, 3D} x {sz, pco-lite, pco-ans} x {memory,
//! v1, v2/v3} x {1, 2, 4, 8} workers — plus one adaptive-selection
//! (`Method::Auto`, codec label `auto`) sweep per scenario across the
//! same formats and worker counts.
//!
//! This is the acceptance bar of the testkit: max pointwise error within
//! the resolved bound (non-finite bit-exact), serialized bytes identical
//! across worker counts, parallel decode identical to serial, and ROI
//! decode agreeing with the full decode. The same sweep backs the
//! `conformance` runner binary, which emits `CONFORMANCE.json` for CI.

use tac_testkit::{run_conformance, scenarios, WORKER_COUNTS};

#[test]
fn full_matrix_passes_for_every_scenario() {
    let report = run_conformance(7);
    // scenarios x (4 fixed methods x 3 codecs + 1 Auto sweep) x 3
    // formats.
    let expected = scenarios().len() * (4 * 3 + 1) * 3;
    assert_eq!(report.cells.len(), expected);
    assert!(report.all_pass(), "{}", report.summary());

    // The sweep really covered the advertised axes.
    assert_eq!(WORKER_COUNTS, [1, 2, 4, 8]);
    for method in ["TAC", "1D", "zMesh", "3D", "Auto"] {
        assert!(report.cells.iter().any(|c| c.method == method), "{method}");
    }
    for codec in ["sz", "pco-lite", "pco-ans", "auto"] {
        assert!(report.cells.iter().any(|c| c.codec == codec), "{codec}");
    }
    // Every Auto cell is an `auto`-codec cell and vice versa, 3 format
    // legs per scenario.
    let auto_cells = report.cells.iter().filter(|c| c.method == "Auto");
    assert_eq!(auto_cells.clone().count(), scenarios().len() * 3);
    assert!(auto_cells.clone().all(|c| c.codec == "auto"));
    // Every chunked cell ran the ROI-agreement leg.
    for c in report.cells.iter().filter(|c| c.format == "v2/v3") {
        assert_eq!(
            c.roi_agrees,
            Some(true),
            "{}/{}/{}",
            c.scenario,
            c.method,
            c.codec
        );
    }
    // The JSON artifact is well-formed enough for CI consumers.
    let json = report.to_json();
    assert!(json.contains("\"failed\": 0"));
    assert!(json.ends_with("}\n"));
}

#[test]
fn matrix_is_deterministic_per_seed() {
    let spec = tac_testkit::scenario("degenerate-corner").unwrap();
    let a = tac_testkit::run_scenarios(std::slice::from_ref(&spec), 5);
    let b = tac_testkit::run_scenarios(std::slice::from_ref(&spec), 5);
    // Timing (`wall_ms`) and the captured run metadata timestamp vary
    // between runs; everything the matrix *measures* must not.
    assert_eq!(a.cells.len(), b.cells.len());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.scenario, y.scenario);
        assert_eq!(x.method, y.method);
        assert_eq!(x.codec, y.codec);
        assert_eq!(x.format, y.format);
        assert_eq!(
            x.container_bytes, y.container_bytes,
            "{}/{}",
            x.scenario, x.format
        );
        assert_eq!(x.workers_identical, y.workers_identical);
        assert_eq!(x.decode_par_identical, y.decode_par_identical);
        assert_eq!(x.max_err_ratio.to_bits(), y.max_err_ratio.to_bits());
        assert_eq!(x.nonfinite_exact, y.nonfinite_exact);
        assert_eq!(x.roi_agrees, y.roi_agrees);
        assert_eq!(x.error, y.error);
    }
}
