//! The `Method::Auto` dominance suite.
//!
//! Pins the TAC+ selection contract: on every registered scenario, at
//! the scenario's own error bound, Auto's compression ratio is at least
//! `DOMINANCE_TOLERANCE` times the best fixed `(method, codec)` pair's
//! — while never violating the bound (the conformance matrix checks
//! bound compliance for the same cells). Also pins determinism under
//! identical seeds, clean fallback on degenerate inputs, and the
//! selection-overhead budget in the sampled regime.

use tac_core::{
    compress_dataset, decompress_dataset, select_auto, AutoParams, CodecId, CompressedDataset,
    Method, Parallelism, TacConfig,
};
use tac_testkit::scenarios;

/// Auto must reach at least this fraction of the best fixed pair's
/// compression ratio on every scenario (the selection's tie-break
/// discounts are bounded well inside this).
const DOMINANCE_TOLERANCE: f64 = 0.95;

/// Selection may cost at most this fraction of the total Auto compress
/// wall in the sampled regime.
const OVERHEAD_BUDGET: f64 = 0.15;

#[test]
fn auto_dominates_every_fixed_pair_on_every_scenario() {
    for spec in scenarios() {
        let ds = spec.build(7);
        let cfg = spec.config();
        let auto_cd = compress_dataset(&ds, &cfg, Method::Auto)
            .unwrap_or_else(|e| panic!("{}: Auto failed: {e}", spec.name));
        let auto_bytes = auto_cd.to_bytes().len();

        // The best fixed pair, skipping pairs the fixed pipeline itself
        // rejects (those cannot be "best").
        let mut best_fixed: Option<(usize, Method, CodecId)> = None;
        for method in Method::fixed() {
            for codec in CodecId::all() {
                let fixed_cfg = TacConfig {
                    codec,
                    ..cfg.clone()
                };
                let Ok(cd) = compress_dataset(&ds, &fixed_cfg, method) else {
                    continue;
                };
                let bytes = cd.to_bytes().len();
                if best_fixed.map_or(true, |(b, ..)| bytes < b) {
                    best_fixed = Some((bytes, method, codec));
                }
            }
        }
        let (best_bytes, best_method, best_codec) =
            best_fixed.unwrap_or_else(|| panic!("{}: no fixed pair compresses", spec.name));

        // Equal error bound, so ratio dominance is byte dominance:
        // ratio_auto >= tol * ratio_best  <=>  auto <= best / tol.
        assert!(
            (auto_bytes as f64) <= (best_bytes as f64) / DOMINANCE_TOLERANCE,
            "{}: Auto {} bytes ({:?}) vs best fixed {} bytes ({best_method:?}/{best_codec}) \
             breaks the {DOMINANCE_TOLERANCE} dominance floor",
            spec.name,
            auto_bytes,
            auto_cd.method(),
            best_bytes,
        );

        // And the winner still round-trips through the wire it chose.
        let parsed = CompressedDataset::from_bytes(&auto_cd.to_bytes()).unwrap();
        assert_eq!(parsed, auto_cd, "{}", spec.name);
    }
}

#[test]
fn auto_is_deterministic_under_identical_seeds() {
    for name in ["nyx-grf", "shock-front", "spike-field"] {
        let spec = tac_testkit::scenario(name).unwrap();
        let cfg = spec.config();
        let reference = compress_dataset(&spec.build(21), &cfg, Method::Auto)
            .unwrap()
            .to_bytes();
        // Identical seed, fresh dataset build: byte-identical output.
        let again = compress_dataset(&spec.build(21), &cfg, Method::Auto)
            .unwrap()
            .to_bytes();
        assert_eq!(reference, again, "{name}: same-seed rerun differs");
        // And across every worker count.
        for workers in [1usize, 2, 4, 8] {
            let cfg_w = TacConfig {
                parallelism: Parallelism::Threads(workers),
                ..cfg.clone()
            };
            let bytes = compress_dataset(&spec.build(21), &cfg_w, Method::Auto)
                .unwrap()
                .to_bytes();
            assert_eq!(reference, bytes, "{name}: {workers} workers differ");
        }
        // A different seed is allowed to differ (and practically does),
        // but must still produce a decodable container.
        let other = compress_dataset(&spec.build(22), &cfg, Method::Auto).unwrap();
        decompress_dataset(&other).unwrap();
    }
}

#[test]
fn degenerate_inputs_fall_back_cleanly() {
    use tac_amr::{AmrDataset, AmrLevel};

    // All levels empty: zMesh cannot compress this; Auto must route
    // around it and still store (and restore) the empty structure.
    let void = AmrDataset::new("void", vec![AmrLevel::empty(8), AmrLevel::empty(4)]);
    let cfg = TacConfig::with_error_bound(tac_sz::ErrorBound::Abs(1e-3));
    let cd = compress_dataset(&void, &cfg, Method::Auto).unwrap();
    assert_ne!(cd.method(), Method::Auto);
    let out = decompress_dataset(&CompressedDataset::from_bytes(&cd.to_bytes()).unwrap()).unwrap();
    assert!(out.levels().iter().all(|l| l.num_present() == 0));

    // A single-chunk dataset (one tiny dense level, no ROI tiling): the
    // selection has exactly one chunk per candidate to work with.
    let tiny = AmrDataset::new(
        "tiny",
        vec![AmrLevel::dense(4, (0..64).map(|i| i as f64).collect())],
    );
    let cd = compress_dataset(&tiny, &cfg, Method::Auto).unwrap();
    let out = decompress_dataset(&cd).unwrap();
    for (a, b) in tiny.levels()[0].data().iter().zip(out.levels()[0].data()) {
        assert!((a - b).abs() <= 1e-3 * (1.0 + 1e-9));
    }

    // A single present value.
    let mut lone = AmrLevel::empty(4);
    lone.set_value(1, 2, 3, 42.0);
    let one = AmrDataset::new("one", vec![lone]);
    let cd = compress_dataset(&one, &cfg, Method::Auto).unwrap();
    let out = decompress_dataset(&cd).unwrap();
    assert!((out.levels()[0].value(1, 2, 3) - 42.0).abs() <= 1e-3 * (1.0 + 1e-9));
}

#[test]
fn selection_overhead_is_bounded_in_the_sampled_regime() {
    use tac_amr::{AmrDataset, AmrLevel};

    // 96^3 dense values: well above the default exhaustive limit, so
    // the selection runs bounded trial encodes rather than full
    // candidate compressions. (Trial cost is constant in dataset size;
    // right at the regime boundary the compress wall is at its
    // smallest, so the fraction is measured where sampling is actually
    // meant to amortize.)
    let dim = 96usize;
    let data: Vec<f64> = (0..dim * dim * dim)
        .map(|i| ((i as f64) * 0.001).sin() + (i as f64) * 1e-6)
        .collect();
    let ds = AmrDataset::new("sampled-regime", vec![AmrLevel::dense(dim, data)]);
    let cfg = TacConfig::default();
    assert!(
        ds.total_present() > cfg.auto.exhaustive_limit,
        "dataset too small to exercise the sampled regime"
    );
    let sel = select_auto(&ds, &cfg).unwrap();
    assert!(!sel.exhaustive, "expected the sampled regime");

    let best_of = |reps: usize, mut f: Box<dyn FnMut()>| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = std::time::Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let ds_ref = &ds;
    let cfg_ref = &cfg;
    let t_select = best_of(
        3,
        Box::new(move || {
            select_auto(ds_ref, cfg_ref).unwrap();
        }),
    );
    let t_total = best_of(
        3,
        Box::new(move || {
            compress_dataset(ds_ref, cfg_ref, Method::Auto).unwrap();
        }),
    );
    println!(
        "selection {t_select:.4}s of {t_total:.4}s Auto compress \
         ({:.1}% of the {:.0}% budget)",
        100.0 * t_select / t_total,
        100.0 * OVERHEAD_BUDGET,
    );
    assert!(
        t_select <= t_total * OVERHEAD_BUDGET,
        "selection took {t_select:.4}s of a {t_total:.4}s Auto compress \
         ({:.1}% > {:.0}% budget)",
        100.0 * t_select / t_total,
        100.0 * OVERHEAD_BUDGET,
    );
}

#[test]
fn sampling_budget_is_tunable_and_validated() {
    let cfg = TacConfig::default().with_auto(AutoParams {
        exhaustive_limit: 0,
        sample_budget: 128,
    });
    cfg.validate().unwrap();
    // A zero budget is rejected up front.
    let bad = TacConfig::default().with_auto(AutoParams {
        exhaustive_limit: 0,
        sample_budget: 0,
    });
    assert!(bad.validate().is_err());
    // With the limit forced to zero every dataset takes the sampled
    // path, and it still produces a valid container.
    let spec = tac_testkit::scenario("nyx-grf").unwrap();
    let ds = spec.build(3);
    let cfg = TacConfig {
        auto: AutoParams {
            exhaustive_limit: 0,
            sample_budget: 128,
        },
        ..spec.config()
    };
    let sel = select_auto(&ds, &cfg).unwrap();
    assert!(!sel.exhaustive);
    let cd = compress_dataset(&ds, &cfg, Method::Auto).unwrap();
    tac_core::decompress_dataset(&cd).unwrap();
}
