//! Golden-container backward compatibility.
//!
//! The byte fixtures under `tests/data/` were produced by the code base
//! *before* the pluggable-codec refactor (PR 3): v1 (monolithic) and v2
//! (chunked) containers for the TAC method and the 1D baseline, plus the
//! bit-exact reconstruction each one decoded to at the time. Every later
//! revision must keep parsing those bytes and reproducing exactly those
//! values — the fixtures pin the wire format, the SZ codec, and the
//! legacy default-codec paths all at once.
//!
//! The `golden_mix_v3` fixture pins the v3 (codec-tagged) format the
//! same way: a TAC container whose fine level is pco-lite-compressed
//! while the rest stays on SZ, serialized right after the format landed.
//!
//! Regenerating (only when intentionally breaking compatibility):
//! `cargo test -p tac-bench --test golden_compat -- --ignored --nocapture`

use std::path::PathBuf;
use tac_amr::{AmrDataset, AmrLevel};
use tac_core::{
    compress_dataset, compress_dataset_f32, decompress_dataset, decompress_dataset_f32, CodecId,
    CompressedDataset, Method, MethodBody, TacConfig, TacDtype,
};
use tac_sz::ErrorBound;

fn data_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/data")
}

/// The fixture dataset: a deterministic three-level AMR snapshot — a
/// blobby fine region (OpST territory), a dense-ish coarse remainder
/// (GSP territory), and an all-empty coarsest level (Empty payload).
fn fixture_dataset() -> AmrDataset {
    let fine_dim = 16;
    let coarse_dim = fine_dim / 2;
    let mut fine = AmrLevel::empty(fine_dim);
    let mut coarse = AmrLevel::empty(coarse_dim);
    let empty = AmrLevel::empty(coarse_dim / 2);
    let c = fine_dim as f64 / 2.0;
    for z in 0..coarse_dim {
        for y in 0..coarse_dim {
            for x in 0..coarse_dim {
                let (fx, fy, fz) = (2 * x, 2 * y, 2 * z);
                let dist =
                    ((fx as f64 - c).powi(2) + (fy as f64 - c).powi(2) + (fz as f64 - c).powi(2))
                        .sqrt();
                if dist < fine_dim as f64 * 0.33 {
                    for dz in 0..2 {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let (px, py, pz) = (fx + dx, fy + dy, fz + dz);
                                let v = ((px as f64) * 0.3).sin()
                                    + ((py as f64) * 0.2).cos()
                                    + pz as f64 * 0.05
                                    + 5.0;
                                fine.set_value(px, py, pz, v);
                            }
                        }
                    }
                } else {
                    let v = ((x as f64) * 0.3).sin() + y as f64 * 0.01 + 3.0;
                    coarse.set_value(x, y, z, v);
                }
            }
        }
    }
    let ds = AmrDataset::new("golden", vec![fine, coarse, empty]);
    ds.validate().unwrap();
    ds
}

/// The fixture dataset narrowed to `f32` — same geometry, each present
/// value rounded to single precision. Pins the v4 (dtype-tagged) wire.
fn fixture_dataset_f32() -> AmrDataset<f32> {
    let ds = fixture_dataset();
    let levels = ds
        .levels()
        .iter()
        .map(|l| {
            let dim = l.dim();
            let mut out = AmrLevel::<f32>::empty(dim);
            for z in 0..dim {
                for y in 0..dim {
                    for x in 0..dim {
                        if l.present(x, y, z) {
                            out.set_value(x, y, z, l.value(x, y, z) as f32);
                        }
                    }
                }
            }
            out
        })
        .collect();
    let ds = AmrDataset::new("golden-f32", levels);
    ds.validate().unwrap();
    ds
}

/// The fixture configuration. Absolute bound so the fixture does not
/// depend on range-resolution behaviour; a tile so the v2 container has
/// several chunks per level.
fn fixture_config() -> TacConfig {
    TacConfig {
        unit: 4,
        error_bound: ErrorBound::Abs(1e-3),
        roi_tile: Some(8),
        ..Default::default()
    }
}

/// Serializes per-level reconstructions: u32 level count, then per level
/// a u64 dim followed by dim^3 f64 bit patterns, all little-endian.
fn encode_expected(ds: &AmrDataset) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend((ds.num_levels() as u32).to_le_bytes());
    for level in ds.levels() {
        out.extend((level.dim() as u64).to_le_bytes());
        for &v in level.data() {
            out.extend(v.to_bits().to_le_bytes());
        }
    }
    out
}

/// f32 flavour of [`encode_expected`]: u32 level count, then per level a
/// u64 dim followed by dim^3 f32 bit patterns, all little-endian.
fn encode_expected_f32(ds: &AmrDataset<f32>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend((ds.num_levels() as u32).to_le_bytes());
    for level in ds.levels() {
        out.extend((level.dim() as u64).to_le_bytes());
        for &v in level.data() {
            out.extend(v.to_bits().to_le_bytes());
        }
    }
    out
}

fn decode_expected_f32(bytes: &[u8]) -> Vec<(usize, Vec<f32>)> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| {
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        s
    };
    let levels = u32::from_le_bytes(take(&mut pos, 4).try_into().unwrap()) as usize;
    (0..levels)
        .map(|_| {
            let dim = u64::from_le_bytes(take(&mut pos, 8).try_into().unwrap()) as usize;
            let data = (0..dim * dim * dim)
                .map(|_| f32::from_bits(u32::from_le_bytes(take(&mut pos, 4).try_into().unwrap())))
                .collect();
            (dim, data)
        })
        .collect()
}

fn decode_expected(bytes: &[u8]) -> Vec<(usize, Vec<f64>)> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| {
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        s
    };
    let levels = u32::from_le_bytes(take(&mut pos, 4).try_into().unwrap()) as usize;
    (0..levels)
        .map(|_| {
            let dim = u64::from_le_bytes(take(&mut pos, 8).try_into().unwrap()) as usize;
            let data = (0..dim * dim * dim)
                .map(|_| f64::from_bits(u64::from_le_bytes(take(&mut pos, 8).try_into().unwrap())))
                .collect();
            (dim, data)
        })
        .collect()
}

/// The mixed-codec fixture container: the TAC compression of the fixture
/// dataset with the fine level's streams produced by pco-lite and the
/// coarser levels by SZ. `to_bytes()` must promote such a container to
/// v3 — the per-level/per-chunk codec-tagged format this fixture pins.
fn fixture_mixed_dataset() -> CompressedDataset {
    let ds = fixture_dataset();
    let sz = compress_dataset(&ds, &fixture_config(), Method::Tac).unwrap();
    let pco = compress_dataset(
        &ds,
        &TacConfig {
            codec: CodecId::PcoLite,
            ..fixture_config()
        },
        Method::Tac,
    )
    .unwrap();
    let mut mixed = sz;
    let (MethodBody::Tac(levels), MethodBody::Tac(pco_levels)) = (&mut mixed.body, pco.body) else {
        unreachable!("TAC compression produced a non-TAC body");
    };
    levels[0] = pco_levels.into_iter().next().unwrap();
    mixed
}

/// The PcoAns mixed-codec fixture container: the fine level's streams
/// produced by pco-ans (the tabled-ANS backend) and the coarser levels
/// by SZ. Pins the `TPA1` stream wire — bin tables, lane seed states,
/// renorm words, offset stream — inside both container generations.
fn fixture_ans_dataset() -> CompressedDataset {
    let ds = fixture_dataset();
    let sz = compress_dataset(&ds, &fixture_config(), Method::Tac).unwrap();
    let ans = compress_dataset(
        &ds,
        &TacConfig {
            codec: CodecId::PcoAns,
            ..fixture_config()
        },
        Method::Tac,
    )
    .unwrap();
    let mut mixed = sz;
    let (MethodBody::Tac(levels), MethodBody::Tac(ans_levels)) = (&mut mixed.body, ans.body) else {
        unreachable!("TAC compression produced a non-TAC body");
    };
    levels[0] = ans_levels.into_iter().next().unwrap();
    mixed
}

/// The f32 flavour of [`fixture_ans_dataset`], whose chunked encoding
/// promotes to the dtype-tagged v4 container.
fn fixture_ans_dataset_f32() -> CompressedDataset {
    let ds = fixture_dataset_f32();
    let sz = compress_dataset_f32(&ds, &fixture_config(), Method::Tac).unwrap();
    let ans = compress_dataset_f32(
        &ds,
        &TacConfig {
            codec: CodecId::PcoAns,
            ..fixture_config()
        },
        Method::Tac,
    )
    .unwrap();
    let mut mixed = sz;
    let (MethodBody::Tac(levels), MethodBody::Tac(ans_levels)) = (&mut mixed.body, ans.body) else {
        unreachable!("TAC compression produced a non-TAC body");
    };
    levels[0] = ans_levels.into_iter().next().unwrap();
    mixed
}

fn method_stem(method: Method) -> &'static str {
    match method {
        Method::Tac => "golden_tac",
        Method::Baseline1D => "golden_b1d",
        _ => unreachable!("no fixtures for {method:?}"),
    }
}

fn check_golden(method: Method, version: &str) {
    check_golden_stem(method_stem(method), method, version);
}

fn check_golden_stem(stem: &str, method: Method, version: &str) {
    let dir = data_dir();
    let bytes = std::fs::read(dir.join(format!("{stem}_{version}.tacd")))
        .unwrap_or_else(|e| panic!("missing fixture {stem}_{version}.tacd: {e}"));
    let expected_bytes = std::fs::read(dir.join(format!("{stem}_expected.bin"))).unwrap();
    let expected = decode_expected(&expected_bytes);

    let cd = CompressedDataset::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{stem}_{version} no longer parses: {e}"));
    assert_eq!(cd.method(), method);
    let out = decompress_dataset(&cd).unwrap();
    assert_eq!(out.num_levels(), expected.len());
    for (l, ((dim, want), level)) in expected.iter().zip(out.levels()).enumerate() {
        assert_eq!(level.dim(), *dim, "level {l} dim");
        assert_eq!(level.data().len(), want.len());
        for (i, (a, b)) in want.iter().zip(level.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{stem}_{version} level {l} cell {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn golden_tac_v1_decodes_bit_exactly() {
    check_golden(Method::Tac, "v1");
}

#[test]
fn golden_tac_v2_decodes_bit_exactly() {
    check_golden(Method::Tac, "v2");
}

#[test]
fn golden_baseline1d_v1_decodes_bit_exactly() {
    check_golden(Method::Baseline1D, "v1");
}

#[test]
fn golden_baseline1d_v2_decodes_bit_exactly() {
    check_golden(Method::Baseline1D, "v2");
}

#[test]
fn golden_mix_v3_decodes_bit_exactly() {
    check_golden_stem("golden_mix", Method::Tac, "v3");
}

#[test]
fn golden_mix_v1_decodes_bit_exactly() {
    // The mixed-codec container also has a v1 (monolithic, codec-tagged
    // level payload) encoding — pinned alongside the chunked v3 bytes.
    check_golden_stem("golden_mix", Method::Tac, "v1");
}

fn check_golden_f32(stem: &str, version: &str) {
    let dir = data_dir();
    let bytes = std::fs::read(dir.join(format!("{stem}_{version}.tacd")))
        .unwrap_or_else(|e| panic!("missing fixture {stem}_{version}.tacd: {e}"));
    let expected_bytes = std::fs::read(dir.join(format!("{stem}_expected.bin"))).unwrap();
    let expected = decode_expected_f32(&expected_bytes);

    let cd = CompressedDataset::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{stem}_{version} no longer parses: {e}"));
    assert_eq!(cd.dtype, TacDtype::F32);
    let out = decompress_dataset_f32(&cd).unwrap();
    assert_eq!(out.num_levels(), expected.len());
    for (l, ((dim, want), level)) in expected.iter().zip(out.levels()).enumerate() {
        assert_eq!(level.dim(), *dim, "level {l} dim");
        assert_eq!(level.data().len(), want.len());
        for (i, (a, b)) in want.iter().zip(level.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{stem}_{version} level {l} cell {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn golden_f32_v4_decodes_bit_exactly() {
    check_golden_f32("golden_f32", "v4");
}

#[test]
fn golden_f32_v1_decodes_bit_exactly() {
    // The f32 container also has a v1 (monolithic) encoding: the level
    // payload tags are self-describing, so even the headerless format
    // recovers the element type.
    check_golden_f32("golden_f32", "v1");
}

/// The v4 fixture really is a v4, f32-tagged container: version byte 4
/// and the f32 dtype tag on the wire, writer pinned via re-serialization,
/// and the f64 decode path must refuse it rather than misread it.
#[test]
fn golden_f32_v4_fixture_is_dtype_tagged() {
    let bytes = std::fs::read(data_dir().join("golden_f32_v4.tacd")).unwrap();
    assert_eq!(&bytes[..4], b"TACD");
    assert_eq!(bytes[4], 4, "fixture is not a v4 container");
    assert_eq!(bytes[6], TacDtype::F32.tag(), "fixture is not tagged f32");
    let cd = CompressedDataset::from_bytes(&bytes).unwrap();
    assert_eq!(cd.to_bytes(), bytes);
    assert!(decompress_dataset(&cd).is_err(), "f64 decode must refuse");
}

/// The v3 fixture really is a v3, mixed-codec container: version byte 3
/// on the wire, and both codecs present across the parsed levels.
#[test]
fn golden_mix_v3_fixture_is_mixed_codec() {
    let bytes = std::fs::read(data_dir().join("golden_mix_v3.tacd")).unwrap();
    assert_eq!(&bytes[..4], b"TACD");
    assert_eq!(bytes[4], 3, "fixture is not a v3 container");
    let cd = CompressedDataset::from_bytes(&bytes).unwrap();
    let MethodBody::Tac(levels) = &cd.body else {
        panic!("fixture is not a TAC container");
    };
    let codecs: Vec<CodecId> = levels.iter().map(|l| l.codec).collect();
    assert!(codecs.contains(&CodecId::PcoLite), "{codecs:?}");
    assert!(codecs.contains(&CodecId::Sz), "{codecs:?}");
    // Re-serializing the parsed container reproduces the fixture bytes:
    // the writer, not just the reader, is pinned.
    assert_eq!(cd.to_bytes(), bytes);
}

#[test]
fn golden_ans_v1_decodes_bit_exactly() {
    // Monolithic (v1) container with a pco-ans fine level: the codec
    // tag travels in the self-describing level payload.
    check_golden_stem("golden_ans", Method::Tac, "v1");
}

/// The v1 ANS fixture really is mixed-codec: both pco-ans and SZ appear
/// across the parsed levels, and the writer reproduces the bytes.
#[test]
fn golden_ans_v1_fixture_is_mixed_codec() {
    let bytes = std::fs::read(data_dir().join("golden_ans_v1.tacd")).unwrap();
    assert_eq!(&bytes[..4], b"TACD");
    assert_eq!(bytes[4], 1, "fixture is not a v1 container");
    let cd = CompressedDataset::from_bytes(&bytes).unwrap();
    let MethodBody::Tac(levels) = &cd.body else {
        panic!("fixture is not a TAC container");
    };
    let codecs: Vec<CodecId> = levels.iter().map(|l| l.codec).collect();
    assert!(codecs.contains(&CodecId::PcoAns), "{codecs:?}");
    assert!(codecs.contains(&CodecId::Sz), "{codecs:?}");
    assert_eq!(cd.to_bytes_v1(), bytes);
}

/// The v4 ANS fixture: a dtype-tagged (f32) chunked container whose
/// fine level is pco-ans. Bit-exact decode against the pinned
/// reconstruction, mixed codecs on the wire, writer reproduces the
/// bytes, and the f64 decode path refuses the stream.
#[test]
fn golden_ans_v4_decodes_bit_exactly() {
    let dir = data_dir();
    let bytes = std::fs::read(dir.join("golden_ans_v4.tacd"))
        .unwrap_or_else(|e| panic!("missing fixture golden_ans_v4.tacd: {e}"));
    assert_eq!(&bytes[..4], b"TACD");
    assert_eq!(bytes[4], 4, "fixture is not a v4 container");
    assert_eq!(bytes[6], TacDtype::F32.tag(), "fixture is not tagged f32");
    let expected =
        decode_expected_f32(&std::fs::read(dir.join("golden_ans_f32_expected.bin")).unwrap());

    let cd = CompressedDataset::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("golden_ans_v4 no longer parses: {e}"));
    let MethodBody::Tac(levels) = &cd.body else {
        panic!("fixture is not a TAC container");
    };
    let codecs: Vec<CodecId> = levels.iter().map(|l| l.codec).collect();
    assert!(codecs.contains(&CodecId::PcoAns), "{codecs:?}");
    assert!(codecs.contains(&CodecId::Sz), "{codecs:?}");
    assert_eq!(cd.to_bytes(), bytes);
    assert!(decompress_dataset(&cd).is_err(), "f64 decode must refuse");

    let out = decompress_dataset_f32(&cd).unwrap();
    assert_eq!(out.num_levels(), expected.len());
    for (l, ((dim, want), level)) in expected.iter().zip(out.levels()).enumerate() {
        assert_eq!(level.dim(), *dim, "level {l} dim");
        assert_eq!(level.data().len(), want.len());
        for (i, (a, b)) in want.iter().zip(level.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "golden_ans_v4 level {l} cell {i}: {a} vs {b}"
            );
        }
    }
}

/// The adaptive-selection fixture (v1, f64): whatever winner
/// `Method::Auto` picked when the fixture was baselined, pinned as
/// ordinary container bytes. Decoding needs no knowledge of the
/// selection — and re-running today's selection must reproduce the
/// pinned bytes, so the determinism contract is itself under pin.
#[test]
fn golden_auto_v1_decodes_bit_exactly() {
    let dir = data_dir();
    let bytes = std::fs::read(dir.join("golden_auto_v1.tacd"))
        .unwrap_or_else(|e| panic!("missing fixture golden_auto_v1.tacd: {e}"));
    let expected = decode_expected(&std::fs::read(dir.join("golden_auto_expected.bin")).unwrap());

    let cd = CompressedDataset::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("golden_auto_v1 no longer parses: {e}"));
    assert_ne!(cd.method(), Method::Auto, "Auto never reaches the wire");
    assert_eq!(cd.to_bytes_v1(), bytes);
    let out = decompress_dataset(&cd).unwrap();
    assert_eq!(out.num_levels(), expected.len());
    for (l, ((dim, want), level)) in expected.iter().zip(out.levels()).enumerate() {
        assert_eq!(level.dim(), *dim, "level {l} dim");
        for (i, (a, b)) in want.iter().zip(level.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "golden_auto_v1 level {l} cell {i}: {a} vs {b}"
            );
        }
    }
    // The selection itself is deterministic across revisions.
    let again = compress_dataset(&fixture_dataset(), &fixture_config(), Method::Auto).unwrap();
    assert_eq!(
        again.to_bytes_v1(),
        bytes,
        "today's selection no longer reproduces the pinned container"
    );
}

/// The f32 flavour: the adaptively-selected container promotes to the
/// dtype-tagged v4 wire like any fixed-method f32 container.
#[test]
fn golden_auto_v4_decodes_bit_exactly() {
    let dir = data_dir();
    let bytes = std::fs::read(dir.join("golden_auto_v4.tacd"))
        .unwrap_or_else(|e| panic!("missing fixture golden_auto_v4.tacd: {e}"));
    assert_eq!(&bytes[..4], b"TACD");
    assert_eq!(bytes[4], 4, "fixture is not a v4 container");
    assert_eq!(bytes[6], TacDtype::F32.tag(), "fixture is not tagged f32");
    let expected =
        decode_expected_f32(&std::fs::read(dir.join("golden_auto_f32_expected.bin")).unwrap());

    let cd = CompressedDataset::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("golden_auto_v4 no longer parses: {e}"));
    assert_ne!(cd.method(), Method::Auto, "Auto never reaches the wire");
    assert_eq!(cd.to_bytes(), bytes);
    assert!(decompress_dataset(&cd).is_err(), "f64 decode must refuse");
    let out = decompress_dataset_f32(&cd).unwrap();
    assert_eq!(out.num_levels(), expected.len());
    for (l, ((dim, want), level)) in expected.iter().zip(out.levels()).enumerate() {
        assert_eq!(level.dim(), *dim, "level {l} dim");
        for (i, (a, b)) in want.iter().zip(level.data()).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "golden_auto_v4 level {l} cell {i}: {a} vs {b}"
            );
        }
    }
    let again =
        compress_dataset_f32(&fixture_dataset_f32(), &fixture_config(), Method::Auto).unwrap();
    assert_eq!(
        again.to_bytes(),
        bytes,
        "today's selection no longer reproduces the pinned container"
    );
}

/// Writes the fixtures from whatever code base is currently checked out.
/// Deliberately `#[ignore]`d: running it against a revision with a
/// different wire format would erase the evidence the tests above exist
/// to preserve.
#[test]
#[ignore = "regenerates the golden fixtures; run only to intentionally re-baseline"]
fn regenerate_golden_fixtures() {
    let ds = fixture_dataset();
    let cfg = fixture_config();
    let dir = data_dir();
    std::fs::create_dir_all(&dir).unwrap();
    for method in [Method::Tac, Method::Baseline1D] {
        let stem = method_stem(method);
        let cd = compress_dataset(&ds, &cfg, method).unwrap();
        std::fs::write(dir.join(format!("{stem}_v1.tacd")), cd.to_bytes_v1()).unwrap();
        std::fs::write(dir.join(format!("{stem}_v2.tacd")), cd.to_bytes()).unwrap();
        let recon = decompress_dataset(&cd).unwrap();
        std::fs::write(
            dir.join(format!("{stem}_expected.bin")),
            encode_expected(&recon),
        )
        .unwrap();
        println!("wrote {stem} fixtures to {}", dir.display());
    }
}

/// Writes only the mixed-codec v3 fixtures. Separate from
/// [`regenerate_golden_fixtures`] so re-baselining the v3 format never
/// silently rewrites the pre-refactor v1/v2 bytes (and vice versa).
#[test]
#[ignore = "regenerates the v3 golden fixtures; run only to intentionally re-baseline"]
fn regenerate_golden_v3_fixtures() {
    let mixed = fixture_mixed_dataset();
    let bytes = mixed.to_bytes();
    assert_eq!(bytes[4], 3, "mixed container did not promote to v3");
    let dir = data_dir();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("golden_mix_v3.tacd"), &bytes).unwrap();
    std::fs::write(dir.join("golden_mix_v1.tacd"), mixed.to_bytes_v1()).unwrap();
    let recon = decompress_dataset(&mixed).unwrap();
    std::fs::write(dir.join("golden_mix_expected.bin"), encode_expected(&recon)).unwrap();
    println!("wrote golden_mix fixtures to {}", dir.display());
}

/// Writes only the PcoAns mixed-codec fixtures (`golden_ans_v1` — f64,
/// monolithic — and `golden_ans_v4` — f32, dtype-tagged chunked), each
/// with its bit-exact expected reconstruction. Separate from the other
/// regenerators so re-baselining the ANS wire never silently rewrites
/// the pre-ANS fixtures (and vice versa).
#[test]
#[ignore = "regenerates the pco-ans golden fixtures; run only to intentionally re-baseline"]
fn regenerate_golden_ans_fixtures() {
    let dir = data_dir();
    std::fs::create_dir_all(&dir).unwrap();

    let mixed = fixture_ans_dataset();
    std::fs::write(dir.join("golden_ans_v1.tacd"), mixed.to_bytes_v1()).unwrap();
    let recon = decompress_dataset(&mixed).unwrap();
    std::fs::write(dir.join("golden_ans_expected.bin"), encode_expected(&recon)).unwrap();

    let mixed32 = fixture_ans_dataset_f32();
    let bytes = mixed32.to_bytes();
    assert_eq!(bytes[4], 4, "f32 container did not promote to v4");
    std::fs::write(dir.join("golden_ans_v4.tacd"), &bytes).unwrap();
    let recon32 = decompress_dataset_f32(&mixed32).unwrap();
    std::fs::write(
        dir.join("golden_ans_f32_expected.bin"),
        encode_expected_f32(&recon32),
    )
    .unwrap();
    println!("wrote golden_ans fixtures to {}", dir.display());
}

/// Writes only the adaptive-selection fixtures (`golden_auto_v1` — f64,
/// monolithic — and `golden_auto_v4` — f32, dtype-tagged chunked), each
/// with its bit-exact expected reconstruction. Separate from the other
/// regenerators so re-baselining the selection pass never silently
/// rewrites the fixed-method fixtures (and vice versa).
#[test]
#[ignore = "regenerates the auto-selection golden fixtures; run only to intentionally re-baseline"]
fn regenerate_golden_auto_fixtures() {
    let dir = data_dir();
    std::fs::create_dir_all(&dir).unwrap();

    let cd = compress_dataset(&fixture_dataset(), &fixture_config(), Method::Auto).unwrap();
    std::fs::write(dir.join("golden_auto_v1.tacd"), cd.to_bytes_v1()).unwrap();
    let recon = decompress_dataset(&cd).unwrap();
    std::fs::write(
        dir.join("golden_auto_expected.bin"),
        encode_expected(&recon),
    )
    .unwrap();

    let cd32 =
        compress_dataset_f32(&fixture_dataset_f32(), &fixture_config(), Method::Auto).unwrap();
    let bytes = cd32.to_bytes();
    assert_eq!(bytes[4], 4, "f32 container did not promote to v4");
    std::fs::write(dir.join("golden_auto_v4.tacd"), &bytes).unwrap();
    let recon32 = decompress_dataset_f32(&cd32).unwrap();
    std::fs::write(
        dir.join("golden_auto_f32_expected.bin"),
        encode_expected_f32(&recon32),
    )
    .unwrap();
    println!("wrote golden_auto fixtures to {}", dir.display());
}

/// Writes only the f32/v4 fixtures. Separate for the same reason as the
/// v3 regenerator: re-baselining the dtype-tagged format must never
/// silently rewrite the older fixtures.
#[test]
#[ignore = "regenerates the v4 golden fixtures; run only to intentionally re-baseline"]
fn regenerate_golden_v4_fixtures() {
    let ds = fixture_dataset_f32();
    let cd = compress_dataset_f32(&ds, &fixture_config(), Method::Tac).unwrap();
    let bytes = cd.to_bytes();
    assert_eq!(bytes[4], 4, "f32 container did not promote to v4");
    let dir = data_dir();
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("golden_f32_v4.tacd"), &bytes).unwrap();
    std::fs::write(dir.join("golden_f32_v1.tacd"), cd.to_bytes_v1()).unwrap();
    let recon = decompress_dataset_f32(&cd).unwrap();
    std::fs::write(
        dir.join("golden_f32_expected.bin"),
        encode_expected_f32(&recon),
    )
    .unwrap();
    println!("wrote golden_f32 fixtures to {}", dir.display());
}
