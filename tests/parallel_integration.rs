//! Cross-crate integration for the block-sharded parallel engine and
//! the chunked (v2/v3) container: determinism across worker counts for
//! every method x codec combination, parallel decompression
//! consistency, byte-counted region-of-interest decoding, and
//! codec-tag corruption handling.

use tac_amr::{Aabb, AmrDataset};
use tac_core::{
    compress_dataset, decompress_dataset, decompress_dataset_par, decompress_region, CodecId,
    CompressedDataset, Method, MethodBody, Parallelism, TacConfig,
};
use tac_nyx::{entry, FieldKind};
use tac_sz::ErrorBound;

fn small_z10() -> AmrDataset {
    entry("Run1_Z10")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 16, 7) // 32^3 fine level
}

fn cfg_with(threads: usize) -> TacConfig {
    TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-3),
        parallelism: Parallelism::Threads(threads),
        ..Default::default()
    }
}

fn cfg_codec(threads: usize, codec: CodecId) -> TacConfig {
    TacConfig {
        codec,
        ..cfg_with(threads)
    }
}

/// The acceptance bar for the engine: for all four methods under both
/// scalar-codec backends, the serialized container is byte-identical at
/// 1, 2, 4, and 8 worker threads.
#[test]
fn parallel_output_is_byte_identical_for_all_methods_and_codecs() {
    let ds = small_z10();
    for codec in CodecId::all() {
        for method in [
            Method::Tac,
            Method::Baseline1D,
            Method::ZMesh,
            Method::Baseline3D,
        ] {
            let reference = compress_dataset(&ds, &cfg_codec(1, codec), method)
                .unwrap()
                .to_bytes();
            for threads in [2, 4, 8] {
                let bytes = compress_dataset(&ds, &cfg_codec(threads, codec), method)
                    .unwrap()
                    .to_bytes();
                assert_eq!(
                    bytes, reference,
                    "{method:?}/{codec} differs at {threads} threads from serial"
                );
            }
        }
    }
}

/// Both codecs honour the error bound end to end, for every method,
/// through both container serializations.
#[test]
fn method_codec_matrix_respects_error_bound() {
    let ds = small_z10();
    // The per-level methods (TAC, 1D) resolve the relative bound
    // against each level's own range; the monolithic methods (zMesh,
    // 3D) resolve it against the global range of the merged stream.
    let (gmin, gmax) = ds
        .levels()
        .iter()
        .filter_map(|l| l.value_range())
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), (a, b)| {
            (lo.min(a), hi.max(b))
        });
    for codec in CodecId::all() {
        let cfg = cfg_codec(2, codec);
        for method in [
            Method::Tac,
            Method::Baseline1D,
            Method::ZMesh,
            Method::Baseline3D,
        ] {
            let per_level = matches!(method, Method::Tac | Method::Baseline1D);
            let cd = compress_dataset(&ds, &cfg, method).unwrap();
            for bytes in [cd.to_bytes(), cd.to_bytes_v1()] {
                let parsed = CompressedDataset::from_bytes(&bytes).unwrap();
                assert_eq!(parsed, cd, "{method:?}/{codec}");
                let out = decompress_dataset(&parsed).unwrap();
                for (l, (a, b)) in ds.levels().iter().zip(out.levels()).enumerate() {
                    let Some((min, max)) = a.value_range() else {
                        continue;
                    };
                    let range = if per_level { max - min } else { gmax - gmin };
                    let eb = 1e-3 * range;
                    for i in a.mask().iter_ones() {
                        assert!(
                            (a.data()[i] - b.data()[i]).abs() <= eb * (1.0 + 1e-9),
                            "{method:?}/{codec} level {l} cell {i}"
                        );
                    }
                }
            }
        }
    }
}

/// A wire codec tag that contradicts the actual streams must surface as
/// a clean error — never a panic, never a silent mis-decode.
#[test]
fn codec_tag_mismatch_is_rejected() {
    let ds = small_z10();
    // Compress with SZ, then lie about the codec in the in-memory
    // container: serialization writes PcoLite tags over SZ streams.
    let mut cd = compress_dataset(&ds, &cfg_with(1), Method::Tac).unwrap();
    if let MethodBody::Tac(levels) = &mut cd.body {
        for l in levels.iter_mut() {
            l.codec = CodecId::PcoLite;
        }
    }
    for bytes in [cd.to_bytes(), cd.to_bytes_v1()] {
        let parsed = CompressedDataset::from_bytes(&bytes).unwrap();
        let err = decompress_dataset(&parsed).unwrap_err();
        assert!(
            err.to_string().contains("pco-lite"),
            "expected a wrong-codec error, got: {err}"
        );
    }
}

/// Flipping a single chunk-table codec byte in a v3 container must be
/// caught at parse time (the table would otherwise route the chunk to
/// the wrong backend).
#[test]
fn tampered_chunk_codec_byte_is_rejected_at_parse() {
    let ds = small_z10();
    let cd = compress_dataset(&ds, &cfg_codec(1, CodecId::PcoLite), Method::Tac).unwrap();
    let bytes = cd.to_bytes();
    assert_eq!(bytes[4], 3, "PcoLite containers serialize as v3");
    // v3 chunk rows: level u8 + offset u64 + len u64, then the codec
    // byte at offset 17 within the row; rows start 4 bytes after the
    // table position recorded in the footer.
    let table_pos = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap()) as usize;
    let codec_at = table_pos + 4 + 17;
    let mut tampered = bytes.clone();
    assert_eq!(tampered[codec_at], CodecId::PcoLite.tag());
    tampered[codec_at] = CodecId::Sz.tag();
    assert!(CompressedDataset::from_bytes(&tampered).is_err());
    assert!(decompress_region(&tampered, Aabb::whole(ds.finest_dim())).is_err());
    // An unknown codec tag is rejected too.
    tampered[codec_at] = 250;
    assert!(CompressedDataset::from_bytes(&tampered).is_err());
}

/// ROI decoding works identically over codec-tagged (v3) containers.
#[test]
fn roi_decode_works_for_pco_lite_containers() {
    let ds = small_z10();
    let cfg = TacConfig {
        roi_tile: Some(ds.finest_dim() / 2),
        ..cfg_codec(2, CodecId::PcoLite)
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let bytes = cd.to_bytes();
    let full = decompress_dataset(&cd).unwrap();
    let half = ds.finest_dim() / 2;
    let roi = Aabb::new((0, 0, 0), (half, half, half));
    let (partial, stats) = decompress_region(&bytes, roi).unwrap();
    assert!(stats.payload_bytes_read < stats.payload_bytes_total);
    for (l, (p, f)) in partial.levels().iter().zip(full.levels()).enumerate() {
        let roi_level = roi.coarsen(1 << l);
        for z in roi_level.min.2..roi_level.max.2 {
            for y in roi_level.min.1..roi_level.max.1 {
                for x in roi_level.min.0..roi_level.max.0 {
                    assert_eq!(p.value(x, y, z), f.value(x, y, z), "level {l}");
                }
            }
        }
    }
}

/// Spatially-tiled grouping (the ROI-friendly layout) must be just as
/// deterministic.
#[test]
fn tiled_parallel_output_is_byte_identical() {
    let ds = small_z10();
    let tiled = |threads: usize| TacConfig {
        roi_tile: Some(16),
        ..cfg_with(threads)
    };
    let reference = compress_dataset(&ds, &tiled(1), Method::Tac)
        .unwrap()
        .to_bytes();
    for threads in [2, 4, 8] {
        let bytes = compress_dataset(&ds, &tiled(threads), Method::Tac)
            .unwrap()
            .to_bytes();
        assert_eq!(
            bytes, reference,
            "tiled output differs at {threads} threads"
        );
    }
}

/// Parallel decompression reconstructs exactly what serial does, for
/// every method and worker count.
#[test]
fn parallel_decompression_matches_serial() {
    let ds = small_z10();
    for method in [
        Method::Tac,
        Method::Baseline1D,
        Method::ZMesh,
        Method::Baseline3D,
    ] {
        let cd = compress_dataset(&ds, &cfg_with(4), method).unwrap();
        let serial = decompress_dataset(&cd).unwrap();
        for threads in [2, 4, 8] {
            let par = decompress_dataset_par(&cd, Parallelism::Threads(threads)).unwrap();
            assert_eq!(par.num_levels(), serial.num_levels());
            for (a, b) in serial.levels().iter().zip(par.levels()) {
                assert_eq!(a.mask(), b.mask(), "{method:?} mask at {threads} threads");
                assert_eq!(a.data(), b.data(), "{method:?} data at {threads} threads");
            }
        }
    }
}

/// The v2 container round-trips through serialization and still honours
/// the error bound.
#[test]
fn v2_container_roundtrips_with_bound() {
    let ds = small_z10();
    let cfg = cfg_with(4);
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let bytes = cd.to_bytes();
    let parsed = CompressedDataset::from_bytes(&bytes).unwrap();
    assert_eq!(parsed, cd);
    // Serialization is deterministic (the seekable layout included).
    assert_eq!(parsed.to_bytes(), bytes);
    let out = decompress_dataset(&parsed).unwrap();
    for (l, (a, b)) in ds.levels().iter().zip(out.levels()).enumerate() {
        let (min, max) = a.value_range().unwrap();
        let eb = 1e-3 * (max - min);
        for i in a.mask().iter_ones() {
            assert!(
                (a.data()[i] - b.data()[i]).abs() <= eb * (1.0 + 1e-9),
                "level {l} cell {i}"
            );
        }
    }
}

/// The acceptance bar for the chunked container: decoding a 1/8-volume
/// ROI reads strictly fewer payload bytes than a full decode, and the
/// decoded cells match the full reconstruction inside the ROI.
#[test]
fn roi_decode_reads_strictly_fewer_bytes() {
    let ds = small_z10();
    let cfg = TacConfig {
        roi_tile: Some(ds.finest_dim() / 2),
        ..cfg_with(2)
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let bytes = cd.to_bytes();
    let full = decompress_dataset(&cd).unwrap();

    let half = ds.finest_dim() / 2;
    let roi = Aabb::new((0, 0, 0), (half, half, half)); // 1/8 volume
    let (partial, stats) = decompress_region(&bytes, roi).unwrap();

    assert!(
        stats.payload_bytes_read < stats.payload_bytes_total,
        "ROI decode read the whole payload ({} bytes)",
        stats.payload_bytes_total
    );
    assert!(stats.chunks_read < stats.chunks_total);

    for (l, (p, f)) in partial.levels().iter().zip(full.levels()).enumerate() {
        let roi_level = roi.coarsen(1 << l);
        for z in roi_level.min.2..roi_level.max.2 {
            for y in roi_level.min.1..roi_level.max.1 {
                for x in roi_level.min.0..roi_level.max.0 {
                    assert_eq!(
                        p.value(x, y, z),
                        f.value(x, y, z),
                        "level {l} cell ({x},{y},{z}) inside ROI"
                    );
                }
            }
        }
    }
}

/// Legacy v1 bytes stay readable and decode to the same dataset as v2.
#[test]
fn v1_and_v2_decode_identically() {
    let ds = small_z10();
    let cd = compress_dataset(&ds, &cfg_with(1), Method::Tac).unwrap();
    let via_v1 = CompressedDataset::from_bytes(&cd.to_bytes_v1()).unwrap();
    let via_v2 = CompressedDataset::from_bytes(&cd.to_bytes()).unwrap();
    assert_eq!(via_v1, via_v2);
    let a = decompress_dataset(&via_v1).unwrap();
    let b = decompress_dataset(&via_v2).unwrap();
    for (x, y) in a.levels().iter().zip(b.levels()) {
        assert_eq!(x.data(), y.data());
    }
}

/// Auto parallelism resolves and compresses correctly end to end.
#[test]
fn auto_parallelism_smoke() {
    let ds = small_z10();
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-3),
        parallelism: Parallelism::Auto,
        ..Default::default()
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let serial = compress_dataset(
        &ds,
        &TacConfig {
            parallelism: Parallelism::Serial,
            ..cfg.clone()
        },
        Method::Tac,
    )
    .unwrap();
    assert_eq!(cd.to_bytes(), serial.to_bytes());
}
