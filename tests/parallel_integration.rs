//! Cross-crate integration for the block-sharded parallel engine and
//! the chunked (v2) container: determinism across worker counts for
//! every method, parallel decompression consistency, and byte-counted
//! region-of-interest decoding.

use tac_amr::{Aabb, AmrDataset};
use tac_core::{
    compress_dataset, decompress_dataset, decompress_dataset_par, decompress_region,
    CompressedDataset, Method, Parallelism, TacConfig,
};
use tac_nyx::{entry, FieldKind};
use tac_sz::ErrorBound;

fn small_z10() -> AmrDataset {
    entry("Run1_Z10")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 16, 7) // 32^3 fine level
}

fn cfg_with(threads: usize) -> TacConfig {
    TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-3),
        parallelism: Parallelism::Threads(threads),
        ..Default::default()
    }
}

/// The acceptance bar for the engine: for all four methods, the
/// serialized container is byte-identical at 1, 2, 4, and 8 worker
/// threads.
#[test]
fn parallel_output_is_byte_identical_for_all_methods() {
    let ds = small_z10();
    for method in [
        Method::Tac,
        Method::Baseline1D,
        Method::ZMesh,
        Method::Baseline3D,
    ] {
        let reference = compress_dataset(&ds, &cfg_with(1), method)
            .unwrap()
            .to_bytes();
        for threads in [2, 4, 8] {
            let bytes = compress_dataset(&ds, &cfg_with(threads), method)
                .unwrap()
                .to_bytes();
            assert_eq!(
                bytes, reference,
                "{method:?} differs at {threads} threads from serial"
            );
        }
    }
}

/// Spatially-tiled grouping (the ROI-friendly layout) must be just as
/// deterministic.
#[test]
fn tiled_parallel_output_is_byte_identical() {
    let ds = small_z10();
    let tiled = |threads: usize| TacConfig {
        roi_tile: Some(16),
        ..cfg_with(threads)
    };
    let reference = compress_dataset(&ds, &tiled(1), Method::Tac)
        .unwrap()
        .to_bytes();
    for threads in [2, 4, 8] {
        let bytes = compress_dataset(&ds, &tiled(threads), Method::Tac)
            .unwrap()
            .to_bytes();
        assert_eq!(
            bytes, reference,
            "tiled output differs at {threads} threads"
        );
    }
}

/// Parallel decompression reconstructs exactly what serial does, for
/// every method and worker count.
#[test]
fn parallel_decompression_matches_serial() {
    let ds = small_z10();
    for method in [
        Method::Tac,
        Method::Baseline1D,
        Method::ZMesh,
        Method::Baseline3D,
    ] {
        let cd = compress_dataset(&ds, &cfg_with(4), method).unwrap();
        let serial = decompress_dataset(&cd).unwrap();
        for threads in [2, 4, 8] {
            let par = decompress_dataset_par(&cd, Parallelism::Threads(threads)).unwrap();
            assert_eq!(par.num_levels(), serial.num_levels());
            for (a, b) in serial.levels().iter().zip(par.levels()) {
                assert_eq!(a.mask(), b.mask(), "{method:?} mask at {threads} threads");
                assert_eq!(a.data(), b.data(), "{method:?} data at {threads} threads");
            }
        }
    }
}

/// The v2 container round-trips through serialization and still honours
/// the error bound.
#[test]
fn v2_container_roundtrips_with_bound() {
    let ds = small_z10();
    let cfg = cfg_with(4);
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let bytes = cd.to_bytes();
    let parsed = CompressedDataset::from_bytes(&bytes).unwrap();
    assert_eq!(parsed, cd);
    // Serialization is deterministic (the seekable layout included).
    assert_eq!(parsed.to_bytes(), bytes);
    let out = decompress_dataset(&parsed).unwrap();
    for (l, (a, b)) in ds.levels().iter().zip(out.levels()).enumerate() {
        let (min, max) = a.value_range().unwrap();
        let eb = 1e-3 * (max - min);
        for i in a.mask().iter_ones() {
            assert!(
                (a.data()[i] - b.data()[i]).abs() <= eb * (1.0 + 1e-9),
                "level {l} cell {i}"
            );
        }
    }
}

/// The acceptance bar for the chunked container: decoding a 1/8-volume
/// ROI reads strictly fewer payload bytes than a full decode, and the
/// decoded cells match the full reconstruction inside the ROI.
#[test]
fn roi_decode_reads_strictly_fewer_bytes() {
    let ds = small_z10();
    let cfg = TacConfig {
        roi_tile: Some(ds.finest_dim() / 2),
        ..cfg_with(2)
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let bytes = cd.to_bytes();
    let full = decompress_dataset(&cd).unwrap();

    let half = ds.finest_dim() / 2;
    let roi = Aabb::new((0, 0, 0), (half, half, half)); // 1/8 volume
    let (partial, stats) = decompress_region(&bytes, roi).unwrap();

    assert!(
        stats.payload_bytes_read < stats.payload_bytes_total,
        "ROI decode read the whole payload ({} bytes)",
        stats.payload_bytes_total
    );
    assert!(stats.chunks_read < stats.chunks_total);

    for (l, (p, f)) in partial.levels().iter().zip(full.levels()).enumerate() {
        let roi_level = roi.coarsen(1 << l);
        for z in roi_level.min.2..roi_level.max.2 {
            for y in roi_level.min.1..roi_level.max.1 {
                for x in roi_level.min.0..roi_level.max.0 {
                    assert_eq!(
                        p.value(x, y, z),
                        f.value(x, y, z),
                        "level {l} cell ({x},{y},{z}) inside ROI"
                    );
                }
            }
        }
    }
}

/// Legacy v1 bytes stay readable and decode to the same dataset as v2.
#[test]
fn v1_and_v2_decode_identically() {
    let ds = small_z10();
    let cd = compress_dataset(&ds, &cfg_with(1), Method::Tac).unwrap();
    let via_v1 = CompressedDataset::from_bytes(&cd.to_bytes_v1()).unwrap();
    let via_v2 = CompressedDataset::from_bytes(&cd.to_bytes_v2()).unwrap();
    assert_eq!(via_v1, via_v2);
    let a = decompress_dataset(&via_v1).unwrap();
    let b = decompress_dataset(&via_v2).unwrap();
    for (x, y) in a.levels().iter().zip(b.levels()) {
        assert_eq!(x.data(), y.data());
    }
}

/// Auto parallelism resolves and compresses correctly end to end.
#[test]
fn auto_parallelism_smoke() {
    let ds = small_z10();
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-3),
        parallelism: Parallelism::Auto,
        ..Default::default()
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let serial = compress_dataset(
        &ds,
        &TacConfig {
            parallelism: Parallelism::Serial,
            ..cfg.clone()
        },
        Method::Tac,
    )
    .unwrap();
    assert_eq!(cd.to_bytes(), serial.to_bytes());
}
