//! Metrics-registry-under-parallelism integration test (requires the
//! `obs` feature; see the `[[test]]` entry in `crates/bench/Cargo.toml`).
//!
//! The sharded registry's contract is that merged counters are a pure
//! function of the work done, not of how it was scheduled: every method
//! compressed at 1/2/4/8 workers must produce identical merged counter
//! totals, and the byte counters must match the container's actual codec
//! payloads exactly. Everything runs inside one `#[test]` because the
//! recorder session is process-global — concurrent test threads would
//! bleed counts into each other's snapshots.

use tac_bench::load_dataset;
use tac_core::{
    compress_dataset, decompress_dataset_par, CompressedDataset, LevelPayload, Method, MethodBody,
    Parallelism, TacConfig,
};
use tac_obs::{Counter, Snapshot};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const METHODS: [Method; 4] = [
    Method::Tac,
    Method::Baseline1D,
    Method::ZMesh,
    Method::Baseline3D,
];

/// Sum of codec stream bytes actually held in the container — the
/// ground truth `payload_bytes_out`/`payload_bytes_in` must equal.
/// Deliberately counts only `stream` buffers, not group/level metadata.
fn container_stream_bytes(cd: &CompressedDataset) -> u64 {
    let total: usize = match &cd.body {
        MethodBody::Tac(levels) => levels
            .iter()
            .map(|l| match &l.payload {
                LevelPayload::Empty => 0,
                LevelPayload::Whole(stream) => stream.len(),
                LevelPayload::Groups(groups) => groups.iter().map(|g| g.stream.len()).sum(),
            })
            .sum(),
        MethodBody::Baseline1D(levels) => levels
            .iter()
            .flatten()
            .map(|(_, _, stream)| stream.len())
            .sum(),
        MethodBody::ZMesh { stream, .. } | MethodBody::Baseline3D { stream, .. } => stream.len(),
    };
    total as u64
}

/// Number of encoded chunks the container holds (one per codec stream).
fn container_chunks(cd: &CompressedDataset) -> u64 {
    let total: usize = match &cd.body {
        MethodBody::Tac(levels) => levels
            .iter()
            .map(|l| match &l.payload {
                LevelPayload::Empty => 0,
                LevelPayload::Whole(_) => 1,
                LevelPayload::Groups(groups) => groups.len(),
            })
            .sum(),
        MethodBody::Baseline1D(levels) => levels.iter().flatten().count(),
        MethodBody::ZMesh { .. } | MethodBody::Baseline3D { .. } => 1,
    };
    total as u64
}

fn counters_of_interest(snap: &Snapshot) -> Vec<(Counter, u64)> {
    [
        Counter::ChunksEncoded,
        Counter::ChunksDecoded,
        Counter::PayloadBytesOut,
        Counter::PayloadBytesIn,
        Counter::SzQuantHits,
        Counter::SzQuantMisses,
        Counter::PcoPages,
    ]
    .into_iter()
    .map(|c| (c, snap.counter(c)))
    .collect()
}

#[test]
fn merged_counters_are_invariant_across_worker_counts() {
    let session = tac_obs::install();
    let ds = load_dataset("Run1_Z10", 16, 14);
    let base_cfg = TacConfig::default();

    for method in METHODS {
        let mut reference: Option<(Vec<(Counter, u64)>, CompressedDataset)> = None;
        for workers in WORKER_COUNTS {
            let cfg = TacConfig {
                parallelism: Parallelism::Threads(workers),
                ..base_cfg.clone()
            };
            let _ = session.take();
            let cd = compress_dataset(&ds, &cfg, method).unwrap();
            decompress_dataset_par(&cd, cfg.parallelism).unwrap();
            let snap = session.take();
            let counters = counters_of_interest(&snap);

            // Byte counters match the container's codec payloads exactly,
            // at every worker count.
            assert_eq!(
                snap.counter(Counter::PayloadBytesOut),
                container_stream_bytes(&cd),
                "{method:?} at {workers} workers: payload_bytes_out vs container"
            );
            assert_eq!(
                snap.counter(Counter::PayloadBytesIn),
                container_stream_bytes(&cd),
                "{method:?} at {workers} workers: payload_bytes_in vs container"
            );
            assert_eq!(
                snap.counter(Counter::ChunksEncoded),
                container_chunks(&cd),
                "{method:?} at {workers} workers: chunks_encoded vs container"
            );

            // Scheduling must not change what was counted.
            match &reference {
                None => reference = Some((counters, cd)),
                Some((expected, ref_cd)) => {
                    assert_eq!(
                        &counters, expected,
                        "{method:?}: counters diverged at {workers} workers"
                    );
                    assert_eq!(
                        ref_cd.to_bytes(),
                        cd.to_bytes(),
                        "{method:?}: container bytes diverged at {workers} workers"
                    );
                }
            }
        }
        let (reference, _) = reference.expect("at least one worker count ran");
        assert!(
            reference.iter().any(|&(_, v)| v > 0),
            "{method:?}: instrumentation recorded nothing"
        );
    }

    // Leave the session clean for any later obs-enabled test binaries
    // sharing the process (none today, but take() is cheap insurance).
    let _ = session.take();
}
