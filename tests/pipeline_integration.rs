//! Integration tests for the hybrid strategy selection and the paper's
//! Sec. 4.4 adaptive method switch, exercised on catalog-shaped data.

use tac_core::{
    choose_strategy, compress_dataset, decompress_dataset, select_method, Method, Strategy,
    TacConfig,
};
use tac_nyx::{entry, FieldKind};
use tac_sz::ErrorBound;

fn cfg(unit: usize) -> TacConfig {
    TacConfig {
        unit,
        error_bound: ErrorBound::Rel(1e-4),
        ..Default::default()
    }
}

#[test]
fn z10_routes_fine_to_opst_and_coarse_to_gsp() {
    // Table 1: Run1_Z10 has 23% fine / 77% coarse.
    let ds = entry("Run1_Z10")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 16, 1);
    let c = cfg(4);
    assert_eq!(choose_strategy(&ds.levels()[0], &c), Strategy::OpST);
    assert_eq!(choose_strategy(&ds.levels()[1], &c), Strategy::Gsp);
    let cd = compress_dataset(&ds, &c, Method::Tac).unwrap();
    assert_eq!(
        cd.strategies().unwrap(),
        vec![Strategy::OpST, Strategy::Gsp]
    );
}

#[test]
fn z5_routes_fine_to_akdtree() {
    // Run1_Z5: 58% fine density sits between T1=50% and T2=60%.
    let ds = entry("Run1_Z5")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 16, 1);
    let c = cfg(4);
    let d = ds.densities();
    assert!(
        (d[0] - 0.58).abs() < 0.03,
        "fine density {} should be ~0.58",
        d[0]
    );
    assert_eq!(choose_strategy(&ds.levels()[0], &c), Strategy::AkdTree);
}

#[test]
fn t2_routes_sparse_fine_to_opst_and_dense_coarse_to_gsp() {
    // Run2_T2: 0.2% fine, 99.8% coarse.
    let ds = entry("Run2_T2")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 8, 1);
    let c = cfg(4);
    assert_eq!(choose_strategy(&ds.levels()[0], &c), Strategy::OpST);
    assert_eq!(choose_strategy(&ds.levels()[1], &c), Strategy::Gsp);
}

#[test]
fn adaptive_switch_picks_3d_for_z3() {
    // Run1_Z3 has a 64% finest level — above T2 — so Sec. 4.4 says use
    // the 3D baseline; Z10 (23%) stays with TAC.
    let c = TacConfig {
        unit: 4,
        adaptive_3d_switch: true,
        ..cfg(4)
    };
    let z3 = entry("Run1_Z3")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 16, 1);
    let z10 = entry("Run1_Z10")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 16, 1);
    assert_eq!(select_method(&z3, &c), Method::Baseline3D);
    assert_eq!(select_method(&z10, &c), Method::Tac);
}

#[test]
fn deep_hierarchy_strategies_follow_densities() {
    // Run2_T4: [3e-5, 0.0002, 0.022, 0.977] -> OpST for the three sparse
    // levels, GSP for the dense coarsest.
    let ds = entry("Run2_T4")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 16, 1);
    let c = cfg(2);
    let cd = compress_dataset(&ds, &c, Method::Tac).unwrap();
    let strategies = cd.strategies().unwrap();
    assert_eq!(strategies.len(), 4);
    for (l, s) in strategies.iter().enumerate().take(3) {
        assert!(
            matches!(s, Strategy::OpST | Strategy::Empty),
            "level {l} got {s:?}"
        );
    }
    assert_eq!(strategies[3], Strategy::Gsp);
}

#[test]
fn tac_beats_3d_baseline_on_very_sparse_finest() {
    // The paper's headline: when the finest level is sparse, the 3D
    // baseline pays for the up-sampled redundancy, TAC does not.
    let ds = entry("Run2_T2")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 8, 2); // fine 32^3, 0.2% dense
    let c = cfg(4);
    let tac = compress_dataset(&ds, &c, Method::Tac).unwrap();
    let b3d = compress_dataset(&ds, &c, Method::Baseline3D).unwrap();
    assert!(
        tac.payload_bytes() < b3d.payload_bytes(),
        "TAC {} bytes vs 3D {} bytes",
        tac.payload_bytes(),
        b3d.payload_bytes()
    );
}

#[test]
fn compressed_sizes_scale_with_error_bound() {
    let ds = entry("Run1_Z10")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 16, 4);
    let mut sizes = Vec::new();
    for eb in [1e-2, 1e-3, 1e-4, 1e-5] {
        let c = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Rel(eb),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &c, Method::Tac).unwrap();
        sizes.push(cd.payload_bytes());
    }
    for w in sizes.windows(2) {
        assert!(
            w[0] < w[1],
            "tighter bounds must cost more bytes: {sizes:?}"
        );
    }
}

#[test]
fn empty_levels_cost_nothing() {
    // A dataset where the finest level exists but holds nothing.
    use tac_amr::{AmrDataset, AmrLevel};
    let fine = AmrLevel::empty(8);
    let coarse = AmrLevel::dense(4, (0..64).map(|i| i as f64).collect());
    let ds = AmrDataset::new("hollow", vec![fine, coarse]);
    ds.validate().unwrap();
    let cd = compress_dataset(&ds, &cfg(4), Method::Tac).unwrap();
    assert_eq!(cd.strategies().unwrap()[0], Strategy::Empty);
    let out = decompress_dataset(&cd).unwrap();
    assert_eq!(out.levels()[0].num_present(), 0);
    assert_eq!(out.levels()[1].num_present(), 64);
}

#[test]
fn forced_strategies_all_roundtrip_on_catalog_data() {
    let ds = entry("Run1_Z10")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 16, 9);
    for strategy in [
        Strategy::ZeroFill,
        Strategy::NaST,
        Strategy::OpST,
        Strategy::AkdTree,
        Strategy::Gsp,
    ] {
        let c = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Rel(1e-4),
            forced_strategy: Some(strategy),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &c, Method::Tac).unwrap();
        let out = decompress_dataset(&cd).unwrap();
        for (a, b) in ds.levels().iter().zip(out.levels()) {
            assert_eq!(a.mask(), b.mask(), "{strategy:?}");
        }
    }
}
