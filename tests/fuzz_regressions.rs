//! Pinned regression tests for every crash class the structure-aware
//! container fuzzer (`tac-testkit`) has found, plus the bounded fuzz
//! smoke CI runs on every push.
//!
//! Each test inlines the offending byte construction — the minimal
//! stream that reproduced the original panic/abort — and asserts the
//! decoder now rejects it with a clean `Err`. Keep these minimal and
//! named after the bug: when the fuzzer finds a new case
//! (`cargo run --release -p tac-testkit --example fuzz_long`), it lands
//! here before the fix.

use tac_testkit::{probe_container, ProbeResult};

/// Little-endian byte builder (mirrors the wire layout under test).
#[derive(Default)]
struct Bytes(Vec<u8>);

impl Bytes {
    fn u8(mut self, v: u8) -> Self {
        self.0.push(v);
        self
    }
    fn u32(mut self, v: u32) -> Self {
        self.0.extend(v.to_le_bytes());
        self
    }
    fn u64(mut self, v: u64) -> Self {
        self.0.extend(v.to_le_bytes());
        self
    }
    fn f64(mut self, v: f64) -> Self {
        self.0.extend(v.to_le_bytes());
        self
    }
    fn raw(mut self, v: &[u8]) -> Self {
        self.0.extend_from_slice(v);
        self
    }
    fn blob(mut self, v: &[u8]) -> Self {
        self.0.extend((v.len() as u64).to_le_bytes());
        self.0.extend_from_slice(v);
        self
    }
}

/// A syntactically valid SZ stream header (magic, version, flags, rank,
/// dims, eb, capacity) with the given rank-1..4 dims.
fn sz_header(flags: u8, dims: &[u64]) -> Bytes {
    let mut b = Bytes::default()
        .raw(b"TSZ1")
        .u8(1)
        .u8(flags)
        .u8(dims.len() as u8);
    for &d in dims {
        b = b.u64(d);
    }
    b.f64(1e-3).u32(65536)
}

/// Fuzzer find #1 (seed 1, iteration 15783): a predictor-section length
/// of `u64::MAX` made the payload cursor's `pos + len` bounds check wrap
/// around, panicking at slice time with `slice index starts at 16 but
/// ends at 15`. The cursor must use checked addition.
#[test]
fn sz_predictor_length_u64max_must_not_wrap_the_bounds_check() {
    let bytes = sz_header(0, &[8])
        .u64(0) // raw-value count
        .u64(u64::MAX) // predictor-section length: the overflow trigger
        .0;
    assert!(tac_sz::decompress(&bytes).is_err());
}

/// Fuzzer find #2 (seed 1, first campaign): a crafted `D4` header whose
/// batch axis declared ~2^33 regression slabs drove a
/// `Vec::with_capacity(nw)` of hundreds of gigabytes — an unwindable
/// allocation abort, not even a panic. Slab counts must be bounded by
/// the predictor section that would have to serialize them.
#[test]
fn sz_d4_slab_count_must_not_drive_the_context_allocation() {
    let bytes = sz_header(0, &[1, 1, 1, 1 << 33])
        .u64(0) // raw-value count
        .blob(&[1]) // predictor section: tag 1 = per-slab contexts
        .0;
    assert!(tac_sz::decompress(&bytes).is_err());
}

/// Crafted raw-value counts must be bounded by the payload that would
/// have to hold them, not just by the declared point count (which can
/// itself be huge): `with_capacity(n_raw)` ran before any read failed.
#[test]
fn sz_raw_count_must_not_drive_an_allocation() {
    let bytes = sz_header(0, &[1 << 30])
        .u64(1 << 30) // raw-value count: 8 GiB worth of f64s
        .0;
    assert!(tac_sz::decompress(&bytes).is_err());
}

/// A declared point count far beyond what the bit stream can encode
/// (every Huffman codeword is >= 1 bit) must fail before the symbol
/// buffer is reserved.
#[test]
fn sz_point_count_must_fit_the_bit_stream() {
    let bytes = sz_header(0, &[1 << 30])
        .u64(0) // raw-value count
        .blob(&[0]) // predictor section: tag 0 = no contexts
        // Huffman table: 2 symbols of length 1.
        .u32(2)
        .u32(1)
        .u8(1)
        .u32(2)
        .u8(1)
        .u64(8) // bit length: 8 bits for 2^30 declared points
        .u8(0xAA)
        .0;
    assert!(tac_sz::decompress(&bytes).is_err());
}

/// An LZSS stream declaring a huge uncompressed size must be rejected
/// up front: tokens expand at most `MAX_MATCH`-fold, so a 9-byte stream
/// claiming 2^60 output bytes is corrupt, not a reservation request.
#[test]
fn lzss_declared_length_is_bounded_by_possible_expansion() {
    let bytes = Bytes::default().u64(1 << 60).u8(0).0;
    assert!(tac_sz::lossless::decompress(&bytes).is_err());
    // The legitimate maximum still round-trips.
    let data = vec![7u8; 4096];
    let packed = tac_sz::lossless::compress(&data);
    assert_eq!(tac_sz::lossless::decompress(&packed).unwrap(), data);
}

/// A container header declaring an absurd finest dimension must fail
/// cleanly: `dim^3` products on wire dimensions overflowed (a panic
/// under debug assertions) before the bound existed.
#[test]
fn container_finest_dim_is_bounded() {
    for dim in [u64::MAX, 1 << 40, (1 << 13) + 1, 0] {
        let bytes = Bytes::default()
            .raw(b"TACD")
            .u8(1) // version
            .u8(0) // method: TAC
            .blob(b"crafted") // name
            .u64(dim)
            .u8(1) // level count
            .0;
        assert_eq!(probe_container(&bytes), ProbeResult::Rejected, "dim {dim}");
    }
}

/// A v1 TAC level record declaring a huge grid side must be rejected at
/// read time — the level dim feeds the same `dim^3` arithmetic as the
/// container header but arrives through a separate wire field.
#[test]
fn container_level_dim_is_bounded() {
    let mask = tac_amr::BitMask::ones(4 * 4 * 4);
    let packed = tac_sz::lossless::compress(&mask.to_bytes());
    let bytes = Bytes::default()
        .raw(b"TACD")
        .u8(1) // version
        .u8(0) // method: TAC
        .blob(b"crafted")
        .u64(4) // finest dim (plausible)
        .u8(1) // level count
        .blob(&packed) // valid mask for a 4^3 level
        // CompressedLevel: strategy, dim (the attack), eb, payload tag.
        .u8(5) // Gsp
        .u64(u64::MAX)
        .f64(1e-3)
        .u8(0) // Empty payload
        .0;
    assert_eq!(probe_container(&bytes), ProbeResult::Rejected);
}

/// The in-memory API is guarded too: a hand-built `CompressedLevel`
/// with an overflowing dimension errors instead of panicking in the
/// mask cross-check.
#[test]
fn in_memory_level_dim_overflow_is_an_error() {
    use tac_core::{decompress_level, CompressedLevel, LevelPayload, Strategy};
    let cl = CompressedLevel {
        strategy: Strategy::Empty,
        dim: usize::MAX,
        abs_eb: 0.0,
        codec: tac_core::CodecId::Sz,
        dtype: tac_core::TacDtype::F64,
        payload: LevelPayload::Empty,
    };
    let mask = tac_amr::BitMask::zeros(8);
    assert!(decompress_level(&cl, &mask).is_err());
}

/// Builds a valid single-page pco-ans stream plus the offsets of its
/// first page's wire fields, for surgical corruption. Layout after the
/// 23-byte D1 header and 8-byte exception count: `n_bins u8`,
/// `n_bins x (lo u8, hi u8, weight u16)`, four lane seed `u32`s,
/// `word_bytes u32`, words, `offset_bytes u32`, offsets.
fn pco_ans_page_fixture() -> (Vec<u8>, usize, usize) {
    use tac_core::{codec_for, CodecConfig, CodecId};
    let data: Vec<f64> = (0..600).map(|i| (i as f64 * 0.01).sin() * 3.0).collect();
    let bytes = codec_for(CodecId::PcoAns)
        .compress(&data, tac_sz::Dims::D1(600), &CodecConfig::abs(1e-3))
        .unwrap();
    let bin_table_at = 23 + 8;
    let n_bins = usize::from(bytes[bin_table_at]);
    let states_at = bin_table_at + 1 + n_bins * 4;
    (bytes, bin_table_at, states_at)
}

/// Campaign hardening for the ANS entropy stage: a weight table whose
/// sum no longer hits the table size must be rejected when the decode
/// table is rebuilt — a wrong sum would otherwise mis-slot every symbol
/// and decode garbage of the right length.
#[test]
fn pco_ans_weight_table_sum_must_match_the_table_size() {
    use tac_core::{codec_for, CodecId};
    let (mut bytes, bin_table_at, _) = pco_ans_page_fixture();
    // Nudge the first bin's weight (lo u8, hi u8, then the u16).
    bytes[bin_table_at + 3] ^= 0x01;
    assert!(codec_for(CodecId::PcoAns).decompress(&bytes).is_err());
}

/// ANS seed states below the normalized interval are unreachable from
/// the encoder; the decoder must reject them up front instead of
/// entering the refill loop in a state the drain check can never accept.
#[test]
fn pco_ans_seed_state_below_interval_is_rejected() {
    use tac_core::{codec_for, CodecId};
    let (mut bytes, _, states_at) = pco_ans_page_fixture();
    for b in &mut bytes[states_at..states_at + 4] {
        *b = 0;
    }
    assert!(codec_for(CodecId::PcoAns).decompress(&bytes).is_err());
}

/// The renorm word stream is `u16` words: an odd byte count can only
/// come from corruption and must fail before the branch-free refill
/// reads half a word.
#[test]
fn pco_ans_odd_word_byte_count_is_rejected() {
    use tac_core::{codec_for, CodecId};
    let (mut bytes, _, states_at) = pco_ans_page_fixture();
    let wb_at = states_at + 16;
    bytes[wb_at..wb_at + 4].copy_from_slice(&1u32.to_le_bytes());
    assert!(codec_for(CodecId::PcoAns).decompress(&bytes).is_err());
}

/// A word byte count of `u32::MAX` must surface as a clean truncation
/// error, not a multi-gigabyte slice request.
#[test]
fn pco_ans_word_count_is_bounded_by_the_stream() {
    use tac_core::{codec_for, CodecId};
    let (mut bytes, _, states_at) = pco_ans_page_fixture();
    let wb_at = states_at + 16;
    bytes[wb_at..wb_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(codec_for(CodecId::PcoAns).decompress(&bytes).is_err());
}

/// Bin class runs must be strictly increasing; an overlapping run would
/// double-count classes and desynchronize the offset widths from the
/// encoder's. (Driven through the container fuzzer's probe surface so
/// the rejection is observed end to end.)
#[test]
fn pco_ans_bin_runs_must_be_strictly_increasing() {
    use tac_core::{codec_for, CodecId};
    let (mut bytes, bin_table_at, _) = pco_ans_page_fixture();
    let n_bins = usize::from(bytes[bin_table_at]);
    if n_bins >= 2 {
        // Make the second bin's lo collide with the first bin's run.
        let first_lo = bytes[bin_table_at + 1];
        bytes[bin_table_at + 1 + 4] = first_lo;
    } else {
        // Single bin: break ordering within the run instead.
        bytes[bin_table_at + 2] = 0;
        bytes[bin_table_at + 1] = 64;
    }
    assert!(codec_for(CodecId::PcoAns).decompress(&bytes).is_err());
}

/// The CI smoke: the bounded seeded campaign must observe zero panics
/// and zero incoherent decodes (every corruption surfaces as `Err` or
/// as a coherent re-decodable container).
#[test]
fn fuzz_smoke_2k_iterations_is_clean() {
    let outcome = tac_testkit::fuzz_containers(&tac_testkit::FuzzConfig::default());
    assert_eq!(outcome.iterations, 2000);
    assert!(outcome.clean(), "{}", outcome.summary());
    // The corpus is structure-aware: a meaningful share of mutants must
    // get past the magic check and die deeper in the grammar — and a
    // few survive entirely (that is what makes the campaign reach the
    // chunk-table and codec layers at all).
    assert!(outcome.accepted > 0, "{}", outcome.summary());
    assert!(outcome.rejected > 1500, "{}", outcome.summary());
}
