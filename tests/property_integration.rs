//! Property-based tests over the whole stack: random AMR structures and
//! fields must round-trip within bounds for every method and strategy.

use proptest::prelude::*;
use tac_amr::{AmrDataset, AmrLevel};
use tac_core::{
    compress_dataset, decompress_dataset, plan_opst_from_occupancy, zmesh_order, Method, Strategy,
    TacConfig,
};
use tac_sz::{compress, decompress, Dims, ErrorBound, SzConfig};

/// Builds a valid two-level tree AMR dataset from a boolean refinement
/// mask over the coarse grid and a value seed.
fn dataset_from_refinement(coarse_dim: usize, refine: &[bool], seed: u64) -> AmrDataset {
    let fine_dim = coarse_dim * 2;
    let mut fine = AmrLevel::empty(fine_dim);
    let mut coarse = AmrLevel::empty(coarse_dim);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0 - 50.0
    };
    for z in 0..coarse_dim {
        for y in 0..coarse_dim {
            for x in 0..coarse_dim {
                if refine[x + coarse_dim * (y + coarse_dim * z)] {
                    for dz in 0..2 {
                        for dy in 0..2 {
                            for dx in 0..2 {
                                fine.set_value(2 * x + dx, 2 * y + dy, 2 * z + dz, next());
                            }
                        }
                    }
                } else {
                    coarse.set_value(x, y, z, next());
                }
            }
        }
    }
    AmrDataset::new("prop", vec![fine, coarse])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sz_roundtrip_respects_bound_on_random_data(
        values in prop::collection::vec(-1e6f64..1e6, 64..256),
        eb_exp in -6i32..-1,
    ) {
        let eb = 10f64.powi(eb_exp) * 1e6;
        let n = values.len();
        let bytes = compress(&values, Dims::D1(n), &SzConfig::abs(eb)).unwrap();
        let (out, dims) = decompress(&bytes).unwrap();
        prop_assert_eq!(dims, Dims::D1(n));
        for (a, b) in values.iter().zip(&out) {
            prop_assert!((a - b).abs() <= eb * (1.0 + 1e-12));
        }
    }

    #[test]
    fn sz_3d_roundtrip_random_grids(
        seed in 0u64..1000,
        eb_exp in -5i32..-2,
    ) {
        let n = 8usize;
        let mut state = seed | 1;
        let values: Vec<f64> = (0..n * n * n).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        }).collect();
        let eb = 10f64.powi(eb_exp);
        let bytes = compress(&values, Dims::D3(n, n, n), &SzConfig::abs(eb)).unwrap();
        let (out, _) = decompress(&bytes).unwrap();
        for (a, b) in values.iter().zip(&out) {
            prop_assert!((a - b).abs() <= eb * (1.0 + 1e-12));
        }
    }

    #[test]
    fn opst_partition_is_exact_for_random_occupancy(
        occ in prop::collection::vec(any::<bool>(), 64),
    ) {
        let nb = 4;
        let plan = plan_opst_from_occupancy(&occ, nb);
        let mut covered = vec![0u32; nb * nb * nb];
        for &(x0, y0, z0, s) in &plan.cubes {
            prop_assert!(x0 + s <= nb && y0 + s <= nb && z0 + s <= nb);
            for z in z0..z0 + s {
                for y in y0..y0 + s {
                    for x in x0..x0 + s {
                        covered[x + nb * (y + nb * z)] += 1;
                    }
                }
            }
        }
        for i in 0..occ.len() {
            prop_assert_eq!(covered[i], occ[i] as u32);
        }
    }

    #[test]
    fn amr_roundtrip_all_methods_random_structure(
        refine in prop::collection::vec(any::<bool>(), 64),
        seed in 0u64..500,
    ) {
        let ds = dataset_from_refinement(4, &refine, seed);
        prop_assume!(ds.total_present() > 0);
        ds.validate().unwrap();
        let cfg = TacConfig {
            unit: 2,
            error_bound: ErrorBound::Abs(0.5),
            ..Default::default()
        };
        for method in [Method::Tac, Method::Baseline1D, Method::ZMesh, Method::Baseline3D] {
            let cd = compress_dataset(&ds, &cfg, method).unwrap();
            let out = decompress_dataset(&cd).unwrap();
            for (a, b) in ds.levels().iter().zip(out.levels()) {
                prop_assert_eq!(a.mask(), b.mask());
                for i in a.mask().iter_ones() {
                    prop_assert!(
                        (a.data()[i] - b.data()[i]).abs() <= 0.5 * (1.0 + 1e-9),
                        "method {:?} level cell {}", method, i
                    );
                }
            }
        }
    }

    #[test]
    fn zmesh_order_is_a_bijection(
        refine in prop::collection::vec(any::<bool>(), 64),
        seed in 0u64..100,
    ) {
        let ds = dataset_from_refinement(4, &refine, seed);
        let masks: Vec<&tac_amr::BitMask> = ds.levels().iter().map(|l| l.mask()).collect();
        let order = zmesh_order(&masks, ds.finest_dim());
        prop_assert_eq!(order.len(), ds.total_present());
        let mut seen = std::collections::HashSet::new();
        for e in &order {
            prop_assert!(seen.insert(*e));
        }
    }

    #[test]
    fn forced_strategies_roundtrip_random_structure(
        refine in prop::collection::vec(any::<bool>(), 64),
        seed in 0u64..100,
        strategy_idx in 0usize..5,
    ) {
        let strategy = [
            Strategy::ZeroFill,
            Strategy::NaST,
            Strategy::OpST,
            Strategy::AkdTree,
            Strategy::Gsp,
        ][strategy_idx];
        let ds = dataset_from_refinement(4, &refine, seed);
        prop_assume!(ds.total_present() > 0);
        let cfg = TacConfig {
            unit: 2,
            error_bound: ErrorBound::Abs(0.25),
            forced_strategy: Some(strategy),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let out = decompress_dataset(&cd).unwrap();
        for (a, b) in ds.levels().iter().zip(out.levels()) {
            for i in a.mask().iter_ones() {
                prop_assert!((a.data()[i] - b.data()[i]).abs() <= 0.25 * (1.0 + 1e-9));
            }
        }
    }

    #[test]
    fn container_bytes_roundtrip_random(
        refine in prop::collection::vec(any::<bool>(), 64),
        seed in 0u64..100,
    ) {
        let ds = dataset_from_refinement(4, &refine, seed);
        prop_assume!(ds.total_present() > 0);
        let cfg = TacConfig {
            unit: 2,
            error_bound: ErrorBound::Abs(1.0),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let bytes = cd.to_bytes();
        let parsed = tac_core::CompressedDataset::from_bytes(&bytes).unwrap();
        prop_assert_eq!(parsed, cd);
    }

    /// Random structures serialize through BOTH container versions and
    /// decode back within the bound with exact mask equality, for every
    /// method.
    #[test]
    fn both_container_versions_roundtrip_random_structure(
        refine in prop::collection::vec(any::<bool>(), 64),
        seed in 0u64..200,
    ) {
        let ds = dataset_from_refinement(4, &refine, seed);
        prop_assume!(ds.total_present() > 0);
        let cfg = TacConfig {
            unit: 2,
            error_bound: ErrorBound::Abs(0.5),
            ..Default::default()
        };
        for method in [Method::Tac, Method::Baseline1D, Method::ZMesh, Method::Baseline3D] {
            let cd = compress_dataset(&ds, &cfg, method).unwrap();
            for bytes in [cd.to_bytes_v1(), cd.to_bytes()] {
                let parsed = tac_core::CompressedDataset::from_bytes(&bytes).unwrap();
                prop_assert_eq!(&parsed, &cd);
                let out = decompress_dataset(&parsed).unwrap();
                for (a, b) in ds.levels().iter().zip(out.levels()) {
                    prop_assert_eq!(a.mask(), b.mask());
                    for i in a.mask().iter_ones() {
                        prop_assert!(
                            (a.data()[i] - b.data()[i]).abs() <= 0.5 * (1.0 + 1e-9),
                            "method {:?} cell {}", method, i
                        );
                    }
                }
            }
        }
    }

    /// `Method::Auto` selects some concrete winner; the resulting
    /// container round-trips within the bound, parses back equal, and
    /// re-serialization is byte-stable: `to_bytes -> parse -> to_bytes`
    /// is the identity on bytes (for both wire versions).
    #[test]
    fn auto_containers_roundtrip_and_reserialize_byte_stably(
        refine in prop::collection::vec(any::<bool>(), 64),
        seed in 0u64..200,
    ) {
        let ds = dataset_from_refinement(4, &refine, seed);
        prop_assume!(ds.total_present() > 0);
        let cfg = TacConfig {
            unit: 2,
            error_bound: ErrorBound::Abs(0.5),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Auto).unwrap();
        prop_assert!(cd.method() != Method::Auto, "Auto never serializes");
        let out = decompress_dataset(&cd).unwrap();
        for (a, b) in ds.levels().iter().zip(out.levels()) {
            prop_assert_eq!(a.mask(), b.mask());
            for i in a.mask().iter_ones() {
                prop_assert!((a.data()[i] - b.data()[i]).abs() <= 0.5 * (1.0 + 1e-9));
            }
        }
        let latest = cd.to_bytes();
        let parsed = tac_core::CompressedDataset::from_bytes(&latest).unwrap();
        prop_assert_eq!(&parsed, &cd);
        prop_assert_eq!(parsed.to_bytes(), latest.clone());
        let v1 = cd.to_bytes_v1();
        let p1 = tac_core::CompressedDataset::from_bytes(&v1).unwrap();
        prop_assert_eq!(p1.to_bytes_v1(), v1.clone());
    }

    /// v2 region-of-interest decoding is a restriction of the full
    /// decode: inside a random ROI every cell matches the full
    /// reconstruction, and the decoder never reads more payload than
    /// the full decode.
    #[test]
    fn roi_decode_is_subset_of_full_decode(
        refine in prop::collection::vec(any::<bool>(), 64),
        seed in 0u64..200,
        corner in 0usize..8,
        tiled in any::<bool>(),
    ) {
        let ds = dataset_from_refinement(4, &refine, seed);
        prop_assume!(ds.total_present() > 0);
        let cfg = TacConfig {
            unit: 2,
            error_bound: ErrorBound::Abs(0.5),
            roi_tile: if tiled { Some(4) } else { None },
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let bytes = cd.to_bytes();
        let full = decompress_dataset(&cd).unwrap();

        // One of the eight 4^3 octants of the 8^3 fine grid.
        let h = ds.finest_dim() / 2;
        let lo = ((corner & 1) * h, ((corner >> 1) & 1) * h, ((corner >> 2) & 1) * h);
        let roi = tac_amr::Aabb::new(lo, (lo.0 + h, lo.1 + h, lo.2 + h));
        let (partial, stats) = tac_core::decompress_region(&bytes, roi).unwrap();

        prop_assert!(stats.payload_bytes_read <= stats.payload_bytes_total);
        prop_assert_eq!(partial.num_levels(), full.num_levels());
        for (l, (p, f)) in partial.levels().iter().zip(full.levels()).enumerate() {
            let roi_level = roi.coarsen(1 << l);
            for z in roi_level.min.2..roi_level.max.2 {
                for y in roi_level.min.1..roi_level.max.1 {
                    for x in roi_level.min.0..roi_level.max.0 {
                        prop_assert!(
                            p.value(x, y, z) == f.value(x, y, z),
                            "level {} cell ({},{},{}) diverges inside ROI", l, x, y, z
                        );
                    }
                }
            }
        }
    }
}

/// Lossless LZSS fuzz outside proptest macro (byte-oriented).
#[test]
fn lzss_roundtrips_structured_buffers() {
    for seed in 0u64..20 {
        let mut state = seed | 1;
        let len = (seed as usize * 977) % 40_000;
        let data: Vec<u8> = (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if (state >> 60) < 12 {
                    (state >> 33) as u8
                } else {
                    (i % 17) as u8 // long structured runs
                }
            })
            .collect();
        let c = tac_sz::lossless::compress(&data);
        let d = tac_sz::lossless::decompress(&c).unwrap();
        assert_eq!(d, data, "seed {seed}");
    }
}
