//! Regression tests for the non-finite input policy.
//!
//! The defined policy (documented on `resolve_level_eb` and the codec
//! trait):
//!
//! * **Absolute bounds accept non-finite data.** Every codec backend
//!   stores NaN and ±Inf verbatim, so they reconstruct **bit-exactly**
//!   through every method, codec, and container format.
//! * **`-0.0` is an ordinary finite value**: it reconstructs within the
//!   bound (typically as `+0.0` — the sign is not guaranteed).
//! * **Relative bounds need a finite range.** When a level's value
//!   range is NaN or infinite, compression fails with the typed
//!   `TacError::NonFinite` instead of resolving a meaningless bound —
//!   the historical failure mode was a silently degenerate epsilon.

use tac_amr::{AmrDataset, AmrLevel};
use tac_core::{
    compress_dataset, decompress_dataset, CodecId, CompressedDataset, Method, TacConfig, TacError,
};
use tac_sz::ErrorBound;

/// An 8^3 single-level dataset with NaN, +/-Inf, and -0.0 planted in an
/// otherwise smooth field.
fn spiked_dataset() -> AmrDataset {
    let n = 8;
    let mut data: Vec<f64> = (0..n * n * n).map(|i| (i as f64 * 0.01).sin()).collect();
    data[3] = f64::NAN;
    data[100] = f64::INFINITY;
    data[200] = f64::NEG_INFINITY;
    data[300] = -0.0;
    AmrDataset::new("nonfinite", vec![AmrLevel::dense(n, data)])
}

const EB: f64 = 1e-3;

fn abs_cfg(codec: CodecId) -> TacConfig {
    TacConfig {
        unit: 4,
        error_bound: ErrorBound::Abs(EB),
        codec,
        ..Default::default()
    }
}

#[test]
fn nonfinite_values_roundtrip_bit_exactly_under_abs_bounds() {
    let ds = spiked_dataset();
    for codec in CodecId::all() {
        for method in [
            Method::Tac,
            Method::Baseline1D,
            Method::ZMesh,
            Method::Baseline3D,
        ] {
            let cd = compress_dataset(&ds, &abs_cfg(codec), method).unwrap();
            for bytes in [cd.to_bytes(), cd.to_bytes_v1()] {
                let out =
                    decompress_dataset(&CompressedDataset::from_bytes(&bytes).unwrap()).unwrap();
                let (a, b) = (ds.finest().data(), out.finest().data());
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    if x.is_finite() {
                        assert!(
                            (x - y).abs() <= EB * (1.0 + 1e-9),
                            "{method:?}/{codec} cell {i}: {x} vs {y}"
                        );
                    } else {
                        assert_eq!(
                            x.to_bits(),
                            y.to_bits(),
                            "{method:?}/{codec} cell {i}: non-finite must be bit-exact"
                        );
                    }
                }
                assert!(b[3].is_nan(), "{method:?}/{codec}");
                assert_eq!(b[100], f64::INFINITY, "{method:?}/{codec}");
                assert_eq!(b[200], f64::NEG_INFINITY, "{method:?}/{codec}");
            }
        }
    }
}

#[test]
fn negative_zero_reconstructs_within_bound() {
    let ds = spiked_dataset();
    for codec in CodecId::all() {
        let cd = compress_dataset(&ds, &abs_cfg(codec), Method::Tac).unwrap();
        let out = decompress_dataset(&cd).unwrap();
        let v = out.finest().data()[300];
        // -0.0 is finite: the bound applies, the sign bit may not
        // survive quantization (0.0 == -0.0 numerically).
        assert!(v.abs() <= EB * (1.0 + 1e-9), "-0.0 reconstructed as {v}");
    }
}

#[test]
fn rel_bound_over_an_infinite_range_is_a_typed_nonfinite_error() {
    let ds = spiked_dataset(); // contains +/-Inf: the range is infinite
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-3),
        ..Default::default()
    };
    for method in [
        Method::Tac,
        Method::Baseline1D,
        Method::ZMesh,
        Method::Baseline3D,
    ] {
        let err = compress_dataset(&ds, &cfg, method).unwrap_err();
        assert!(
            matches!(err, TacError::NonFinite(_)),
            "{method:?}: expected NonFinite, got {err}"
        );
    }
}

#[test]
fn rel_bound_over_an_all_nan_level_is_a_typed_nonfinite_error() {
    let n = 4;
    let ds = AmrDataset::new(
        "all-nan",
        vec![AmrLevel::dense(n, vec![f64::NAN; n * n * n])],
    );
    let cfg = TacConfig {
        unit: 2,
        error_bound: ErrorBound::Rel(1e-3),
        ..Default::default()
    };
    let err = compress_dataset(&ds, &cfg, Method::Tac).unwrap_err();
    assert!(matches!(err, TacError::NonFinite(_)), "{err}");
}

#[test]
fn rel_bound_with_finite_extremes_but_overflowing_span_still_compresses() {
    // -1e308..1e308 is an all-finite level whose span overflows f64.
    // The NonFinite guard must not fire (no value is non-finite); the
    // resolver falls back to its conservative MIN_POSITIVE bound, which
    // stores values effectively verbatim — still bound-respecting.
    let n = 4;
    let mut data = vec![0.0f64; n * n * n];
    data[0] = -1e308;
    data[1] = 1e308;
    let ds = AmrDataset::new("span-overflow", vec![AmrLevel::dense(n, data)]);
    let cfg = TacConfig {
        unit: 2,
        error_bound: ErrorBound::Rel(1e-3),
        ..Default::default()
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac)
        .expect("finite data must compress under a Rel bound");
    let out = decompress_dataset(&cd).unwrap();
    for (i, (a, b)) in ds
        .finest()
        .data()
        .iter()
        .zip(out.finest().data())
        .enumerate()
    {
        assert_eq!(a, b, "cell {i}: MIN_POSITIVE bound must be near-verbatim");
    }
}

#[test]
fn rel_bound_with_finite_range_tolerates_sprinkled_nan() {
    // NaN values do not poison the min/max fold, so a level whose
    // extremes are finite still resolves its relative bound; the NaNs
    // ride through verbatim.
    let n = 8;
    let mut data: Vec<f64> = (0..n * n * n).map(|i| i as f64 * 0.1).collect();
    data[7] = f64::NAN;
    let ds = AmrDataset::new("speckled", vec![AmrLevel::dense(n, data)]);
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-3),
        ..Default::default()
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let out = decompress_dataset(&cd).unwrap();
    assert!(out.finest().data()[7].is_nan());
    let range = (n * n * n - 1) as f64 * 0.1;
    for (i, (a, b)) in ds
        .finest()
        .data()
        .iter()
        .zip(out.finest().data())
        .enumerate()
    {
        if a.is_finite() {
            assert!((a - b).abs() <= 1e-3 * range * (1.0 + 1e-9), "cell {i}");
        }
    }
}
