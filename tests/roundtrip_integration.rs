//! Cross-crate integration: synthetic Nyx datasets through every
//! compression method, verifying error bounds, container serialization,
//! and structural integrity end to end.

use tac_amr::AmrDataset;
use tac_core::{compress_dataset, decompress_dataset, CompressedDataset, Method, TacConfig};
use tac_nyx::{entry, FieldKind};
use tac_sz::ErrorBound;

/// Per-level absolute bound check over present cells.
fn assert_bounds(orig: &AmrDataset, recon: &AmrDataset, abs_eb_per_level: &[f64]) {
    for (l, (a, b)) in orig.levels().iter().zip(recon.levels()).enumerate() {
        let eb = abs_eb_per_level[l.min(abs_eb_per_level.len() - 1)];
        for i in a.mask().iter_ones() {
            let (x, y) = (a.data()[i], b.data()[i]);
            assert!(
                (x - y).abs() <= eb * (1.0 + 1e-9),
                "level {l} cell {i}: {x} vs {y} (eb {eb})"
            );
        }
    }
}

fn global_range(ds: &AmrDataset) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for l in ds.levels() {
        if let Some((a, b)) = l.value_range() {
            lo = lo.min(a);
            hi = hi.max(b);
        }
    }
    hi - lo
}

fn small_z10() -> AmrDataset {
    entry("Run1_Z10")
        .unwrap()
        .generate(FieldKind::BaryonDensity, 16, 7) // 32^3 fine level
}

#[test]
fn all_methods_roundtrip_z10() {
    let ds = small_z10();
    ds.validate().unwrap();
    let range = global_range(&ds);
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-4),
        ..Default::default()
    };
    for method in [
        Method::Tac,
        Method::Baseline1D,
        Method::ZMesh,
        Method::Baseline3D,
    ] {
        let cd = compress_dataset(&ds, &cfg, method).unwrap();
        let out = decompress_dataset(&cd).unwrap();
        // Every method resolves Rel(1e-4) against a range no larger than
        // the uniform/global range, so 1e-4 * global range is the loosest
        // possible absolute bound.
        assert_bounds(&ds, &out, &[1e-4 * range]);
        for (a, b) in ds.levels().iter().zip(out.levels()) {
            assert_eq!(a.mask(), b.mask(), "{method:?} altered the mask");
        }
        assert!(cd.stats().ratio() > 1.0, "{method:?} failed to compress");
    }
}

#[test]
fn container_bytes_roundtrip_through_disk_format() {
    let ds = small_z10();
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Abs(1e6),
        ..Default::default()
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let bytes = cd.to_bytes();
    let parsed = CompressedDataset::from_bytes(&bytes).unwrap();
    assert_eq!(parsed, cd);
    let out = decompress_dataset(&parsed).unwrap();
    assert_eq!(out.num_levels(), ds.num_levels());
    // Byte-level determinism: compressing the same input twice gives the
    // same container.
    let cd2 = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    assert_eq!(cd2.to_bytes(), bytes);
}

#[test]
fn deep_hierarchy_t4_roundtrips() {
    let e = entry("Run2_T4").unwrap();
    let ds = e.generate(FieldKind::BaryonDensity, 16, 3); // 64^3 finest, 4 levels
    ds.validate().unwrap();
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Abs(1e7),
        ..Default::default()
    };
    for method in [Method::Tac, Method::Baseline1D, Method::Baseline3D] {
        let cd = compress_dataset(&ds, &cfg, method).unwrap();
        let out = decompress_dataset(&cd).unwrap();
        assert_bounds(&ds, &out, &[1e7]);
    }
}

#[test]
fn per_level_bounds_hold_with_adaptive_eb() {
    let ds = small_z10();
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Abs(1e6),
        level_eb_scale: vec![3.0, 1.0], // paper's power-spectrum tuning
        ..Default::default()
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let out = decompress_dataset(&cd).unwrap();
    assert_bounds(&ds, &out, &[3e6, 1e6]);
    let strategies = cd.strategies().unwrap();
    assert_eq!(strategies.len(), 2);
}

#[test]
fn all_seven_catalog_entries_compress_with_tac() {
    for e in tac_nyx::CATALOG {
        let scale = if e.paper_fine_dim >= 512 { 32 } else { 16 };
        let ds = e.generate(FieldKind::BaryonDensity, scale, 11);
        ds.validate()
            .unwrap_or_else(|err| panic!("{}: {err}", e.name));
        let cfg = TacConfig {
            unit: 2,
            error_bound: ErrorBound::Rel(1e-3),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let out = decompress_dataset(&cd).unwrap();
        assert_eq!(out.num_levels(), ds.num_levels(), "{}", e.name);
        for (a, b) in ds.levels().iter().zip(out.levels()) {
            assert_eq!(a.mask(), b.mask(), "{}", e.name);
        }
    }
}

#[test]
fn velocity_fields_with_negative_values_roundtrip() {
    let ds = entry("Run1_Z5")
        .unwrap()
        .generate(FieldKind::VelocityX, 16, 5);
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-4),
        ..Default::default()
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let out = decompress_dataset(&cd).unwrap();
    let mut lo = f64::INFINITY;
    for l in ds.levels() {
        if let Some((a, _)) = l.value_range() {
            lo = lo.min(a);
        }
    }
    assert!(lo < 0.0, "velocity field should be signed");
    assert_bounds(&ds, &out, &[1e-4 * global_range(&ds)]);
}
