//! Post-analysis integration: power spectrum and halo finder over
//! compressed/decompressed cosmology data — the Sec. 4.5 experiments in
//! miniature.

use tac_amr::to_uniform;
use tac_analysis::{
    amr_distortion, compare_catalogs, find_halos, power_spectrum, relative_error, HaloFinderConfig,
};
use tac_core::{compress_dataset, decompress_dataset, Method, TacConfig};
use tac_nyx::{entry, FieldKind};
use tac_sz::ErrorBound;

fn z2(scale: usize, seed: u64) -> tac_amr::AmrDataset {
    entry("Run1_Z2")
        .unwrap()
        .generate(FieldKind::BaryonDensity, scale, seed)
}

#[test]
fn power_spectrum_error_shrinks_with_error_bound() {
    let ds = z2(16, 21); // 32^3 fine
    let n = ds.finest_dim();
    let reference = power_spectrum(&to_uniform(&ds), n);
    let mut errors = Vec::new();
    for eb in [1e-2, 1e-4, 1e-5] {
        let cfg = TacConfig {
            unit: 4,
            error_bound: ErrorBound::Rel(eb),
            ..Default::default()
        };
        let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
        let out = decompress_dataset(&cd).unwrap();
        let ps = power_spectrum(&to_uniform(&out), n);
        // The paper's criterion inspects k below a cutoff (k < 10).
        let max_err = relative_error(&reference, &ps)
            .into_iter()
            .zip(&reference.k)
            .filter(|(_, &k)| k < 10.0)
            .map(|(e, _)| e)
            .fold(0.0f64, f64::max);
        errors.push(max_err);
    }
    assert!(
        errors[0] > errors[2],
        "spectrum error should shrink with eb: {errors:?}"
    );
    // At rel 1e-5 the low-k spectrum error is small (the synthetic field's
    // halo shot noise makes the paper's 1% a 5% here at this tiny scale).
    assert!(errors[2] < 0.05, "rel 1e-5 spectrum error {}", errors[2]);
}

#[test]
fn halo_finder_survives_compression() {
    let ds = z2(8, 22); // 64^3 fine for meaningful halos
    let n = ds.finest_dim();
    let uniform = to_uniform(&ds);
    let hf = HaloFinderConfig {
        threshold_factor: 20.0,
        min_cells: 4,
    };
    let original = find_halos(&uniform, n, &hf);
    assert!(
        !original.halos.is_empty(),
        "synthetic baryon field must contain halos"
    );
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-4),
        ..Default::default()
    };
    let cd = compress_dataset(&ds, &cfg, Method::Tac).unwrap();
    let out = decompress_dataset(&cd).unwrap();
    let decompressed = find_halos(&to_uniform(&out), n, &hf);
    let cmp = compare_catalogs(&original, &decompressed);
    assert!(
        cmp.rel_mass_diff < 0.01,
        "biggest halo mass drifted {}",
        cmp.rel_mass_diff
    );
}

#[test]
fn adaptive_eb_trades_level_fidelity() {
    // With a 3:1 (fine:coarse) error-bound ratio at matched total budget,
    // the coarse level gets *more* fidelity than uniform bounds give it.
    let ds = z2(16, 23);
    let uniform_cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Abs(2e7),
        ..Default::default()
    };
    let adaptive_cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Abs(2e7),
        level_eb_scale: vec![1.5, 0.5], // fine looser, coarse tighter
        ..Default::default()
    };
    let uni =
        decompress_dataset(&compress_dataset(&ds, &uniform_cfg, Method::Tac).unwrap()).unwrap();
    let ada =
        decompress_dataset(&compress_dataset(&ds, &adaptive_cfg, Method::Tac).unwrap()).unwrap();
    let coarse_err = |recon: &tac_amr::AmrDataset| {
        let a = &ds.levels()[1];
        let b = &recon.levels()[1];
        let mut max = 0.0f64;
        for i in a.mask().iter_ones() {
            max = max.max((a.data()[i] - b.data()[i]).abs());
        }
        max
    };
    assert!(
        coarse_err(&ada) <= coarse_err(&uni) + 1e-9,
        "adaptive coarse error {} vs uniform {}",
        coarse_err(&ada),
        coarse_err(&uni)
    );
}

#[test]
fn psnr_orders_methods_consistently() {
    // All methods at the same relative bound: distortion must be within
    // the bound-implied floor for each, and PSNR finite/positive.
    let ds = z2(16, 24);
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-3),
        ..Default::default()
    };
    for method in [
        Method::Tac,
        Method::Baseline1D,
        Method::ZMesh,
        Method::Baseline3D,
    ] {
        let cd = compress_dataset(&ds, &cfg, method).unwrap();
        let out = decompress_dataset(&cd).unwrap();
        let d = amr_distortion(&ds, &out);
        assert!(
            d.psnr > 40.0 && d.psnr.is_finite(),
            "{method:?}: psnr {}",
            d.psnr
        );
    }
}

#[test]
fn spectrum_of_reconstruction_matches_reference_bin_by_bin() {
    // Shape preservation: every low-k bin of the decompressed spectrum
    // tracks the original within a few percent at a tight bound.
    let ds = z2(16, 25);
    let n = ds.finest_dim();
    let reference = power_spectrum(&to_uniform(&ds), n);
    let cfg = TacConfig {
        unit: 4,
        error_bound: ErrorBound::Rel(1e-5),
        ..Default::default()
    };
    let out = decompress_dataset(&compress_dataset(&ds, &cfg, Method::Tac).unwrap()).unwrap();
    let ps = power_spectrum(&to_uniform(&out), n);
    for ((e, &k), &p) in relative_error(&reference, &ps)
        .iter()
        .zip(&reference.k)
        .zip(&reference.power)
    {
        if k < 10.0 {
            assert!(*e < 0.08, "bin k={k:.1} (P={p:.3e}) drifted {e:.4}");
        }
    }
}
